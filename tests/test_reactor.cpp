// Deterministic protocol tests for the epoll reactor (src/serve/reactor).
// Every test drives the reactor through adopted socketpair ends and a
// manually-advanced clock, single-stepping the event loop with
// run_once(0) — so partial reads, pipelined bursts, slow-loris stalls,
// mid-parse deadline expiry, EMFILE accept backoff, and batch-coalescing
// windows replay exactly, with no real timers and no sleeps on the
// assertion path.
//
// The last section is the batch-coalescing property test against the real
// PredictionService: N identical-config /v1/workload queries arriving in
// one window must cost exactly ONE workload generation (proven through
// /metricsz served by the same reactor) and every member must receive a
// byte-identical body; a mixed-config storm must never cross-contaminate.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "picsim/sim_driver.hpp"
#include "serve/access_log.hpp"
#include "serve/http_parser.hpp"
#include "serve/reactor.hpp"
#include "serve/service.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/failpoint.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace picp::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// The scripted peer of one adopted connection: raw byte I/O plus an
/// incremental response scanner, so tests assert on exactly the wire
/// bytes the reactor produced.
struct Peer {
  int fd = -1;
  std::string inbox;

  explicit Peer(int raw_fd = -1) : fd(raw_fd) {}
  Peer(Peer&& other) noexcept : fd(other.fd), inbox(std::move(other.inbox)) {
    other.fd = -1;
  }
  Peer& operator=(Peer&& other) noexcept {
    if (fd >= 0) ::close(fd);
    fd = other.fd;
    inbox = std::move(other.inbox);
    other.fd = -1;
    return *this;
  }
  ~Peer() {
    if (fd >= 0) ::close(fd);
  }

  void send(const std::string& bytes) const {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Drain whatever the reactor has flushed so far into the inbox.
  void pump() {
    char buf[8192];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
      if (n <= 0) break;
      inbox.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// True once the reactor closed its end (after pump() drained the tail).
  bool closed() const {
    char byte;
    const ssize_t n = ::recv(fd, &byte, 1, MSG_DONTWAIT | MSG_PEEK);
    return n == 0;
  }

  /// Parse every complete response sitting in the inbox, consuming them.
  std::vector<HttpResponse> take_responses() {
    std::vector<HttpResponse> out;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t end = wire::find_head_end(inbox, pos);
      if (end == std::string::npos) break;
      std::string start_line;
      HttpResponse response;
      wire::parse_head_block(inbox.substr(pos, end - pos), start_line,
                             response.headers);
      response.status = static_cast<int>(
          parse_int(start_line.substr(start_line.find(' ') + 1, 3)));
      HttpLimits limits;
      const std::size_t body =
          wire::content_length_of(response.headers, limits);
      if (inbox.size() - end < body) break;
      response.body = inbox.substr(end, body);
      pos = end + body;
      out.push_back(std::move(response));
    }
    inbox.erase(0, pos);
    return out;
  }
};

/// Blocking-free echo handler: 200, body = "<method> <target>|<body>".
HttpResponse echo_handler(const HttpRequest& request) {
  HttpResponse response;
  response.set_header("Content-Type", "text/plain");
  response.body = request.method + " " + request.target + "|" + request.body;
  return response;
}

class ReactorTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }

  ReactorOptions quick_options() {
    ReactorOptions options;
    options.request_timeout_ms = 1000;
    options.accept_backoff_ms = 100;
    options.batchable = [](const HttpRequest& r) {
      return r.method == "POST" && (r.target == "/v1/workload" ||
                                    r.target == "/v1/predict");
    };
    return options;
  }

  void make(const ReactorOptions& options, EpollReactor::Handler handler,
            ThreadPool* pool = nullptr) {
    now_ = Clock::now();
    reactor_ = std::make_unique<EpollReactor>(
        options, std::move(handler), pool, [this] { return now_; });
  }

  Peer adopt_peer() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reactor_->adopt(fds[0]);
    return Peer(fds[1]);
  }

  void advance_ms(int ms) { now_ += std::chrono::milliseconds(ms); }

  /// Step the loop and pump every peer handed in.
  void cycle(std::initializer_list<Peer*> peers = {}) {
    reactor_->run_once(0);
    for (Peer* peer : peers) peer->pump();
  }

  /// Bound listener on an ephemeral port; returns the port.
  std::uint16_t make_listener() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr), 0);
    EXPECT_EQ(::listen(listen_fd_, 16), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len), 0);
    reactor_->listen_on(listen_fd_);
    return ntohs(addr.sin_port);
  }

  Clock::time_point now_{};
  std::unique_ptr<EpollReactor> reactor_;
  int listen_fd_ = -1;

 public:
  ~ReactorTest() override {
    reactor_.reset();  // closes its conns first
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }
};

// --- incremental parsing ----------------------------------------------------

TEST_F(ReactorTest, PartialReadsAssembleOneRequest) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();

  peer.send("GET /hea");
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty()) << "responded to half a line";

  peer.send("lthz HTTP/1.1\r\nHost: x");
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty()) << "responded to half a head";

  peer.send("\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, "GET /healthz|");
  EXPECT_FALSE(peer.closed()) << "keep-alive connection was closed";
  EXPECT_EQ(reactor_->stats().requests, 1u);
}

TEST_F(ReactorTest, BodyArrivingByteByByteCompletesTheRequest) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("POST /echo HTTP/1.1\r\nContent-Length: 3\r\n\r\n");
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty());
  for (const char* byte : {"a", "b"}) {
    peer.send(byte);
    cycle({&peer});
    EXPECT_TRUE(peer.take_responses().empty());
  }
  peer.send("c");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "POST /echo|abc");
}

TEST_F(ReactorTest, PipelinedBurstAnswersInOrderOnOneConnection) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nbb"
      "GET /c HTTP/1.1\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].body, "GET /a|");
  EXPECT_EQ(responses[1].body, "POST /b|bb");
  EXPECT_EQ(responses[2].body, "GET /c|");
  EXPECT_FALSE(peer.closed());
  EXPECT_EQ(reactor_->stats().requests, 3u);
}

TEST_F(ReactorTest, MalformedRequestGets400ThenClose) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("NOT A REQUEST\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  EXPECT_TRUE(peer.closed()) << "poisoned framing must not be reused";
}

TEST_F(ReactorTest, OversizedHeaderBlockGets431) {
  ReactorOptions options = quick_options();
  options.limits.max_header_bytes = 128;
  make(options, echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'x') + "\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 431);
  EXPECT_TRUE(peer.closed());
}

// --- deadlines off the injectable clock -------------------------------------

TEST_F(ReactorTest, SlowLorisGets408AtTheReceiveBudget) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("POST /v1/workload HTTP/1.1\r\nContent-Le");  // never finishes
  cycle({&peer});

  advance_ms(999);
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty()) << "timed out before the budget";
  EXPECT_FALSE(peer.closed());

  advance_ms(2);
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 408);
  EXPECT_TRUE(peer.closed());
  EXPECT_EQ(reactor_->stats().timeouts, 1u);
}

TEST_F(ReactorTest, DribblingBytesDoesNotExtendTheMessageDeadline) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HT");
  cycle({&peer});
  // 900 ms in, the peer dribbles a few more bytes. The budget is per
  // message, not per byte — the deadline must NOT reset.
  advance_ms(900);
  peer.send("TP/1.1\r\nHost:");
  cycle({&peer});
  advance_ms(200);  // 1100 ms since the message started
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 408);
  EXPECT_TRUE(peer.closed());
}

TEST_F(ReactorTest, IdleKeepAliveExpiresSilently) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HTTP/1.1\r\n\r\n");
  cycle({&peer});
  ASSERT_EQ(peer.take_responses().size(), 1u);

  advance_ms(1001);
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty())
      << "idle expiry must not write anything";
  EXPECT_TRUE(peer.closed());
  EXPECT_EQ(reactor_->stats().timeouts, 1u);
}

TEST_F(ReactorTest, CompletedRequestResetsTheIdleBudget) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  advance_ms(900);
  peer.send("GET / HTTP/1.1\r\n\r\n");  // completes at t=900
  cycle({&peer});
  ASSERT_EQ(peer.take_responses().size(), 1u);
  advance_ms(900);  // t=1800 < 900+1000: still inside the refreshed budget
  cycle({&peer});
  EXPECT_FALSE(peer.closed());
  peer.send("GET /again HTTP/1.1\r\n\r\n");
  cycle({&peer});
  EXPECT_EQ(peer.take_responses().size(), 1u);
}

// --- EOF handling -----------------------------------------------------------

TEST_F(ReactorTest, CleanEofBetweenMessagesClosesQuietly) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HTTP/1.1\r\n\r\n");
  cycle({&peer});
  ASSERT_EQ(peer.take_responses().size(), 1u);
  ::shutdown(peer.fd, SHUT_WR);
  cycle({&peer});
  EXPECT_TRUE(peer.take_responses().empty());
  EXPECT_TRUE(peer.closed());
  EXPECT_EQ(reactor_->connection_count(), 0u);
}

TEST_F(ReactorTest, ConnectionCloseRequestIsHonored) {
  make(quick_options(), echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_NE(responses[0].header("connection"), nullptr);
  EXPECT_EQ(*responses[0].header("connection"), "close");
  EXPECT_TRUE(peer.closed());
}

// --- accept path: shedding and EMFILE backoff -------------------------------

TEST_F(ReactorTest, ConnectionCapShedsWith503RetryAfter) {
  ReactorOptions options = quick_options();
  options.max_connections = 1;
  options.retry_after_seconds = 7;
  make(options, echo_handler);
  const std::uint16_t port = make_listener();

  Peer first(connect_tcp("127.0.0.1", port));
  cycle();  // accept the first
  Peer second(connect_tcp("127.0.0.1", port));
  cycle({&second});  // shed the second

  const auto responses = second.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 503);
  ASSERT_NE(responses[0].header("retry-after"), nullptr);
  EXPECT_EQ(*responses[0].header("retry-after"), "7");
  EXPECT_TRUE(second.closed());

  // The surviving connection still serves.
  first.send("GET / HTTP/1.1\r\n\r\n");
  cycle({&first});
  EXPECT_EQ(first.take_responses().size(), 1u);
  const ReactorStats stats = reactor_->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_busy, 1u);
}

TEST_F(ReactorTest, EmfileBackoffPausesAcceptThenRecovers) {
  make(quick_options(), echo_handler);
  const std::uint16_t port = make_listener();

  // One simulated EMFILE, injected at the accept site — no need to
  // actually exhaust the fd table.
  failpoint::arm("http.accept=errno(24):times1");
  Peer peer(connect_tcp("127.0.0.1", port));
  cycle();
  EXPECT_EQ(reactor_->stats().accept_backoffs, 1u);
  EXPECT_EQ(reactor_->stats().accepted, 0u)
      << "EMFILE must pause accepts, not half-accept";

  // Still inside the backoff window: nothing accepted.
  advance_ms(99);
  cycle();
  EXPECT_EQ(reactor_->stats().accepted, 0u);

  // Past the window: the connection that waited in the backlog is served.
  advance_ms(2);
  cycle();
  EXPECT_EQ(reactor_->stats().accepted, 1u);
  peer.send("GET / HTTP/1.1\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
}

// --- queue-depth SLO ---------------------------------------------------------

TEST_F(ReactorTest, QueueDepthSloShedsCompleteRequests) {
  ReactorOptions options = quick_options();
  options.max_pending_requests = 0;  // every execution is over the SLO
  make(options, echo_handler);
  Peer peer = adopt_peer();
  peer.send("GET / HTTP/1.1\r\n\r\n");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 503);
  ASSERT_NE(responses[0].header("retry-after"), nullptr);
  EXPECT_TRUE(peer.closed());
  EXPECT_EQ(reactor_->stats().shed_queue, 1u);
}

// --- batching ---------------------------------------------------------------

TEST_F(ReactorTest, SameCycleIdenticalRequestsShareOneExecution) {
  int executions = 0;
  ReactorOptions options = quick_options();
  make(options, [&executions](const HttpRequest& request) {
    ++executions;
    return echo_handler(request);
  });
  Peer a = adopt_peer();
  Peer b = adopt_peer();
  Peer c = adopt_peer();
  const std::string wire =
      "POST /v1/workload HTTP/1.1\r\nContent-Length: 14\r\n\r\n"
      "{\"ranks\": [4]}";
  a.send(wire);
  b.send(wire);
  c.send(wire);
  cycle({&a, &b, &c});

  EXPECT_EQ(executions, 1) << "identical same-cycle requests must coalesce";
  std::vector<std::string> bodies;
  for (Peer* peer : {&a, &b, &c}) {
    const auto responses = peer->take_responses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, 200);
    bodies.push_back(responses[0].body);
    EXPECT_FALSE(peer->closed());
  }
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_EQ(bodies[1], bodies[2]);
  const ReactorStats stats = reactor_->stats();
  EXPECT_EQ(stats.batch_leaders, 1u);
  EXPECT_EQ(stats.batch_members, 2u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST_F(ReactorTest, BatchWindowHoldsTheLeaderForLateTwins) {
  int executions = 0;
  ReactorOptions options = quick_options();
  options.batch_window_ms = 50;
  make(options, [&executions](const HttpRequest& request) {
    ++executions;
    return echo_handler(request);
  });
  Peer a = adopt_peer();
  Peer b = adopt_peer();
  const std::string wire =
      "POST /v1/workload HTTP/1.1\r\nContent-Length: 14\r\n\r\n"
      "{\"ranks\": [4]}";
  a.send(wire);
  cycle({&a});
  EXPECT_EQ(executions, 0) << "leader dispatched before its window closed";
  EXPECT_TRUE(a.take_responses().empty());

  advance_ms(30);
  b.send(wire);
  cycle({&a, &b});
  EXPECT_EQ(executions, 0);

  advance_ms(21);  // window expires 51 ms after the leader arrived
  cycle({&a, &b});
  EXPECT_EQ(executions, 1);
  ASSERT_EQ(a.take_responses().size(), 1u);
  ASSERT_EQ(b.take_responses().size(), 1u);
  EXPECT_EQ(reactor_->stats().batch_members, 1u);
}

TEST_F(ReactorTest, DifferentDeadlineHeadersNeverCoalesce) {
  int executions = 0;
  make(quick_options(), [&executions](const HttpRequest& request) {
    ++executions;
    return echo_handler(request);
  });
  Peer a = adopt_peer();
  Peer b = adopt_peer();
  a.send(
      "POST /v1/workload HTTP/1.1\r\nX-Picp-Deadline-Ms: 100\r\n"
      "Content-Length: 14\r\n\r\n{\"ranks\": [4]}");
  b.send(
      "POST /v1/workload HTTP/1.1\r\n"
      "Content-Length: 14\r\n\r\n{\"ranks\": [4]}");
  cycle({&a, &b});
  EXPECT_EQ(executions, 2)
      << "a tighter deadline must not ride a looser execution";
  EXPECT_EQ(reactor_->stats().batch_members, 0u);
}

TEST_F(ReactorTest, FullBatchDispatchesWithoutWaitingForTheWindow) {
  int executions = 0;
  ReactorOptions options = quick_options();
  options.batch_window_ms = 10000;  // would stall forever if waited for
  options.max_batch = 2;
  make(options, [&executions](const HttpRequest& request) {
    ++executions;
    return echo_handler(request);
  });
  Peer a = adopt_peer();
  Peer b = adopt_peer();
  const std::string wire =
      "POST /v1/workload HTTP/1.1\r\nContent-Length: 14\r\n\r\n"
      "{\"ranks\": [4]}";
  a.send(wire);
  b.send(wire);
  cycle({&a, &b});
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(a.take_responses().size(), 1u);
  EXPECT_EQ(b.take_responses().size(), 1u);
}

// --- worker-pool dispatch ----------------------------------------------------

TEST_F(ReactorTest, PoolDispatchDeliversThroughTheCompletionQueue) {
  ThreadPool pool(2);
  make(quick_options(), echo_handler, &pool);
  Peer peer = adopt_peer();
  peer.send("POST /echo HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
  std::vector<HttpResponse> responses;
  // The handler runs on a worker; its completion wakes the loop through
  // the wake pipe. Bounded real-time waits, no manual-clock advance.
  for (int i = 0; i < 200 && responses.empty(); ++i) {
    reactor_->run_once(25);
    peer.pump();
    responses = peer.take_responses();
  }
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "POST /echo|hi");
  pool.wait_idle();  // no task may outlive the reactor below
}

// --- property test: batch coalescing against the real service ---------------

/// Miniature trace shared by every service-backed test in this file.
/// Leaked on purpose: process-lifetime.
const std::string& reactor_trace_path() {
  static const std::string* path = [] {
    SimConfig cfg;
    cfg.nelx = 8;
    cfg.nely = 8;
    cfg.nelz = 16;
    cfg.bed.num_particles = 1500;
    cfg.num_iterations = 100;
    cfg.sample_every = 50;
    cfg.num_ranks = 8;
    cfg.filter_size = 0.08;
    const auto* p = new std::string(testing::TempDir() + "/picp_reactor_" +
                                    std::to_string(::getpid()) + ".trace");
    SimDriver driver(cfg);
    driver.run(*p);
    return p;
  }();
  return *path;
}

/// Counter value out of a /metricsz JSON body; 0 when absent.
std::uint64_t metric_value(const std::string& body, const std::string& name) {
  const std::size_t at = body.find("\"" + name + "\":");
  if (at == std::string::npos) return 0;
  std::size_t cursor = body.find(':', at) + 1;
  while (cursor < body.size() && body[cursor] == ' ') ++cursor;
  std::uint64_t value = 0;
  while (cursor < body.size() && body[cursor] >= '0' && body[cursor] <= '9')
    value = value * 10 + static_cast<std::uint64_t>(body[cursor++] - '0');
  return value;
}

std::string workload_wire(const std::string& ranks_json) {
  const std::string body = "{\"ranks\": [" + ranks_json + "]}";
  return "POST /v1/workload HTTP/1.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

class ReactorServiceTest : public ReactorTest {
 protected:
  void SetUp() override {
    telemetry::configure(telemetry::SessionOptions{});
    config_.trace_path = reactor_trace_path();
    config_.nelx = 8;
    config_.nely = 8;
    config_.nelz = 16;
    service_ = std::make_unique<PredictionService>(config_);
    make(quick_options(), [this](const HttpRequest& request) {
      return service_->handle(request);
    });
  }

  /// One complete request/response exchange on a fresh connection.
  HttpResponse roundtrip(const std::string& wire_bytes) {
    Peer peer = adopt_peer();
    peer.send(wire_bytes);
    std::vector<HttpResponse> responses;
    for (int i = 0; i < 100 && responses.empty(); ++i) {
      cycle({&peer});
      responses = peer.take_responses();
    }
    EXPECT_EQ(responses.size(), 1u);
    return responses.empty() ? HttpResponse{} : responses[0];
  }

  std::uint64_t generations() {
    const HttpResponse metrics = roundtrip("GET /metricsz HTTP/1.1\r\n\r\n");
    EXPECT_EQ(metrics.status, 200);
    return metric_value(metrics.body, "serve.workload.generations");
  }

  ServiceConfig config_;
  std::unique_ptr<PredictionService> service_;
};

TEST_F(ReactorServiceTest, IdenticalStormCostsExactlyOneGeneration) {
  const std::uint64_t before = generations();

  constexpr int kPeers = 6;
  std::vector<Peer> peers;
  peers.reserve(kPeers);
  for (int i = 0; i < kPeers; ++i) peers.push_back(adopt_peer());
  const std::string wire = workload_wire("6");
  for (Peer& peer : peers) peer.send(wire);
  reactor_->run_once(0);  // all six requests coalesce in this one cycle

  std::vector<std::string> bodies;
  for (Peer& peer : peers) {
    peer.pump();
    const auto responses = peer.take_responses();
    ASSERT_EQ(responses.size(), 1u);
    ASSERT_EQ(responses[0].status, 200) << responses[0].body;
    bodies.push_back(responses[0].body);
  }
  for (int i = 1; i < kPeers; ++i)
    EXPECT_EQ(bodies[0], bodies[i])
        << "batch member " << i << " got a different body";

  // The whole storm cost ONE workload generation — proven through the
  // same reactor via /metricsz, like the shell smoke does.
  EXPECT_EQ(generations() - before, 1u);
  const ReactorStats stats = reactor_->stats();
  EXPECT_EQ(stats.batch_leaders, 1u);
  EXPECT_EQ(stats.batch_members, static_cast<std::uint64_t>(kPeers - 1));

  // A later solo request replays the member bytes exactly.
  const HttpResponse solo = roundtrip(wire);
  ASSERT_EQ(solo.status, 200);
  EXPECT_EQ(solo.body, bodies[0])
      << "solo replay diverged from the batched response";
  EXPECT_EQ(generations() - before, 1u) << "solo replay regenerated";
}

TEST_F(ReactorServiceTest, MixedStormNeverCrossContaminates) {
  constexpr int kPeers = 8;
  std::vector<Peer> peers;
  peers.reserve(kPeers);
  for (int i = 0; i < kPeers; ++i) peers.push_back(adopt_peer());
  // Alternate two configs through one cycle: 4-rank and 8-rank workloads.
  for (int i = 0; i < kPeers; ++i)
    peers[i].send(workload_wire(i % 2 == 0 ? "4" : "8"));
  reactor_->run_once(0);

  std::vector<std::string> bodies(kPeers);
  for (int i = 0; i < kPeers; ++i) {
    peers[i].pump();
    const auto responses = peers[i].take_responses();
    ASSERT_EQ(responses.size(), 1u);
    ASSERT_EQ(responses[0].status, 200) << responses[0].body;
    bodies[i] = responses[0].body;
  }

  // Within a config: byte-identical. Across configs: distinct.
  for (int i = 2; i < kPeers; i += 2) EXPECT_EQ(bodies[0], bodies[i]);
  for (int i = 3; i < kPeers; i += 2) EXPECT_EQ(bodies[1], bodies[i]);
  EXPECT_NE(bodies[0], bodies[1]) << "4-rank and 8-rank responses collided";

  // And each matches its config's solo ground truth.
  EXPECT_EQ(roundtrip(workload_wire("4")).body, bodies[0]);
  EXPECT_EQ(roundtrip(workload_wire("8")).body, bodies[1]);
}

TEST_F(ReactorServiceTest, ReadinessProbeGatesHealthzReadyOnly) {
  // Liveness stays 200 regardless; ?ready=1 consults the probe.
  EXPECT_EQ(roundtrip("GET /healthz HTTP/1.1\r\n\r\n").status, 200);
  EXPECT_EQ(roundtrip("GET /healthz?ready=1 HTTP/1.1\r\n\r\n").status, 200);

  service_->set_readiness_probe([](std::string* reason) {
    if (reason != nullptr) *reason = "draining";
    return false;
  });
  EXPECT_EQ(roundtrip("GET /healthz HTTP/1.1\r\n\r\n").status, 200);
  const HttpResponse not_ready =
      roundtrip("GET /healthz?ready=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(not_ready.status, 503);
  ASSERT_NE(not_ready.header("retry-after"), nullptr);
  EXPECT_NE(not_ready.body.find("draining"), std::string::npos);
}

TEST_F(ReactorServiceTest, MetricszSpeaksPrometheusOnRequest) {
  // Default stays JSON for the existing tooling.
  const HttpResponse json = roundtrip("GET /metricsz HTTP/1.1\r\n\r\n");
  ASSERT_EQ(json.status, 200);
  ASSERT_NE(json.header("content-type"), nullptr);
  EXPECT_NE(json.header("content-type")->find("application/json"),
            std::string::npos);

  const HttpResponse prom =
      roundtrip("GET /metricsz?format=prometheus HTTP/1.1\r\n\r\n");
  ASSERT_EQ(prom.status, 200);
  ASSERT_NE(prom.header("content-type"), nullptr);
  EXPECT_EQ(*prom.header("content-type"), "text/plain; version=0.0.4");
  EXPECT_NE(prom.body.find("# HELP picp_"), std::string::npos);
  EXPECT_NE(prom.body.find("# TYPE picp_serve_requests counter"),
            std::string::npos);
  EXPECT_EQ(prom.body.find("{\"metrics\""), std::string::npos)
      << "prometheus body leaked JSON";
}

// --- request observability ---------------------------------------------------

TEST_F(ReactorTest, EveryResponseCarriesATraceId) {
  make(quick_options(), echo_handler);

  // Generated id on a plain request.
  Peer peer = adopt_peer();
  peer.send("GET /healthz HTTP/1.1\r\n\r\n");
  cycle({&peer});
  auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  const std::string* generated = responses[0].header("x-picp-trace-id");
  ASSERT_NE(generated, nullptr);
  EXPECT_EQ(generated->substr(0, 2), "p-");

  // A well-formed inbound id is propagated verbatim.
  peer.send("GET /healthz HTTP/1.1\r\nX-Picp-Trace-Id: client-42.a\r\n\r\n");
  cycle({&peer});
  responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  const std::string* echoed = responses[0].header("x-picp-trace-id");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "client-42.a");

  // A hostile inbound id is replaced, never echoed.
  peer.send("GET /healthz HTTP/1.1\r\nX-Picp-Trace-Id: has spaces!\r\n\r\n");
  cycle({&peer});
  responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  const std::string* replaced = responses[0].header("x-picp-trace-id");
  ASSERT_NE(replaced, nullptr);
  EXPECT_EQ(replaced->substr(0, 2), "p-");

  // Even a 400 for unparseable framing is traceable.
  Peer bad = adopt_peer();
  bad.send("NOT A REQUEST\r\n\r\n");
  cycle({&bad});
  responses = bad.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  ASSERT_NE(responses[0].header("x-picp-trace-id"), nullptr);
}

TEST_F(ReactorTest, ObserverSeesWaitsStagesAndStatusPerRequest) {
  std::vector<RequestTrace> observed;
  ReactorOptions options = quick_options();
  options.observer = [&observed](const RequestTrace& trace) {
    observed.push_back(trace);
  };
  // Handler walks the annotated pipeline on the manual clock: 5 ms of
  // "cache" around a nested 20 ms "generate", then 10 ms "simulate" and
  // 3 ms "render" — exclusive stage times must sum to the handler time.
  make(options, [this](const HttpRequest& request) {
    {
      const RequestTrace::Stage cache("cache");
      advance_ms(5);
      const RequestTrace::Stage generate("generate");
      advance_ms(20);
    }
    {
      const RequestTrace::Stage simulate("simulate");
      advance_ms(10);
    }
    const RequestTrace::Stage render("render");
    advance_ms(3);
    return echo_handler(request);
  });

  Peer peer = adopt_peer();
  peer.send("POST /v1/predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
  cycle({&peer});
  const auto responses = peer.take_responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);

  ASSERT_EQ(observed.size(), 1u);
  const RequestTrace& trace = observed[0];
  EXPECT_EQ(trace.method, "POST");
  EXPECT_EQ(trace.path, "/v1/predict");
  EXPECT_EQ(trace.status, 200);
  EXPECT_STREQ(trace.role, "solo");
  ASSERT_NE(responses[0].header("x-picp-trace-id"), nullptr);
  EXPECT_EQ(*responses[0].header("x-picp-trace-id"), trace.id);

  // Same-cycle inline dispatch: no batch or queue wait on the manual
  // clock; the handler accounts for the whole request.
  EXPECT_DOUBLE_EQ(trace.batch_wait_us, 0.0);
  EXPECT_DOUBLE_EQ(trace.queue_wait_us, 0.0);
  EXPECT_DOUBLE_EQ(trace.handler_us, 38000.0);
  EXPECT_DOUBLE_EQ(trace.total_us, 38000.0);

  double stage_sum_us = 0.0;
  for (const StageTiming& stage : trace.stages()) stage_sum_us += stage.dur_us;
  const double accounted =
      trace.batch_wait_us + trace.queue_wait_us + stage_sum_us;
  EXPECT_NEAR(accounted, trace.total_us, 0.1 * trace.total_us)
      << "stage timings do not account for the request total";

  // The access-log line renders the same numbers.
  const Json line = Json::parse(access_log_line(trace));
  EXPECT_EQ(line.find("trace_id")->as_string(), trace.id);
  EXPECT_DOUBLE_EQ(line.find("total_us")->as_double(), 38000.0);
  EXPECT_DOUBLE_EQ(line.find("stages")->find("cache")->as_double(), 5000.0);
  EXPECT_DOUBLE_EQ(line.find("stages")->find("generate")->as_double(),
                   20000.0);
}

TEST_F(ReactorTest, SampledSlowRequestEmitsSpansThatSumToTheTotal) {
  telemetry::configure(telemetry::SessionOptions{});  // in-memory session
  ReactorOptions options = quick_options();
  options.trace_sample_n = 1;  // sample every finished request
  make(options, [this](const HttpRequest& request) {
    {
      const RequestTrace::Stage generate("generate");
      advance_ms(30);
    }
    const RequestTrace::Stage simulate("simulate");
    advance_ms(12);
    return echo_handler(request);
  });

  Peer peer = adopt_peer();
  peer.send("POST /v1/predict HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  cycle({&peer});
  ASSERT_EQ(peer.take_responses().size(), 1u);

  double request_us = 0.0, stage_sum_us = 0.0;
  for (const auto& tagged : telemetry::tracer().collect()) {
    if (std::string(tagged.span.category) != "request") continue;
    const std::string name = tagged.span.name;
    if (name == "request")
      request_us = tagged.span.dur_us;
    else if (name != "queue" && name != "batch-wait")
      stage_sum_us += tagged.span.dur_us;
  }
  EXPECT_DOUBLE_EQ(request_us, 42000.0);
  EXPECT_NEAR(stage_sum_us, request_us, 0.1 * request_us)
      << "emitted stage spans do not sum to the request span";

  // RED histograms observed the same request.
  const auto snapshot = telemetry::registry().snapshot();
  bool red_seen = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "serve.red.total_us.predict.2xx") {
      red_seen = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_DOUBLE_EQ(h.sum, 42000.0);
    }
  }
  EXPECT_TRUE(red_seen) << "RED latency histogram was never registered";
}

TEST_F(ReactorTest, MetricsScrapeNeverBlocksBehindABatchedStorm) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  std::atomic<int> blocked{0};

  ThreadPool pool(2);
  make(quick_options(), [&](const HttpRequest& request) {
    if (request.method == "POST") {
      blocked.fetch_add(1);
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return released; });
    }
    return echo_handler(request);
  }, &pool);

  // A storm of identical batchable requests coalesces into ONE pool task,
  // which parks on the gate — one worker consumed, one still free.
  constexpr int kStorm = 4;
  std::vector<Peer> storm;
  storm.reserve(kStorm);
  for (int i = 0; i < kStorm; ++i) storm.push_back(adopt_peer());
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
  for (Peer& peer : storm) peer.send(wire);
  reactor_->run_once(0);  // parse + coalesce + dispatch the batch
  for (int i = 0; i < 400 && blocked.load() == 0; ++i)
    reactor_->run_once(25);
  ASSERT_EQ(blocked.load(), 1) << "storm did not coalesce into one task";

  // The scrape-style request must complete while the storm is parked.
  Peer scrape = adopt_peer();
  scrape.send("GET /metricsz HTTP/1.1\r\n\r\n");
  std::vector<HttpResponse> scraped;
  for (int i = 0; i < 400 && scraped.empty(); ++i) {
    reactor_->run_once(25);
    scrape.pump();
    scraped = scrape.take_responses();
  }
  ASSERT_EQ(scraped.size(), 1u) << "scrape starved behind the batch";
  EXPECT_EQ(scraped[0].status, 200);
  for (Peer& peer : storm) {
    peer.pump();
    EXPECT_TRUE(peer.take_responses().empty())
        << "storm answered before the gate opened";
  }

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  std::size_t answered = 0;
  for (int i = 0; i < 400 && answered < kStorm; ++i) {
    reactor_->run_once(25);
    for (Peer& peer : storm) {
      peer.pump();
      answered += peer.take_responses().size();
    }
  }
  EXPECT_EQ(answered, static_cast<std::size_t>(kStorm));
  pool.wait_idle();

  // Snapshot consistency: every batchable request is accounted for as
  // exactly one leader or member.
  const ReactorStats stats = reactor_->stats();
  EXPECT_EQ(stats.batch_leaders, 1u);
  EXPECT_EQ(stats.batch_members, static_cast<std::uint64_t>(kStorm - 1));
  EXPECT_EQ(stats.batch_leaders + stats.batch_members,
            static_cast<std::uint64_t>(kStorm));
}

}  // namespace
}  // namespace picp::serve
