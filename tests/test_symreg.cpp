#include "model/symreg.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace picp {
namespace {

SymRegParams fast_params(std::uint64_t seed = 1) {
  SymRegParams p;
  p.population = 128;
  p.generations = 25;
  p.threads = 1;
  p.seed = seed;
  return p;
}

double test_mape(const PerfModel& model, const Dataset& data) {
  std::vector<double> actual(data.size()), predicted(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    actual[i] = data.target(i);
    predicted[i] = model.evaluate(data.row(i));
  }
  return mape(actual, predicted);
}

TEST(SymReg, RecoversLinearLaw) {
  Dataset data({"x"});
  Xoshiro256 rng(1);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(1, 100);
    data.add(std::array<double, 1>{x}, 3.0 * x + 2.0);
  }
  const SymbolicModel model = fit_symbolic(data, fast_params());
  EXPECT_LT(test_mape(model, data), 1.0);
}

TEST(SymReg, RecoversProductLaw) {
  // t = c * a * b — the shape of the projection kernel's cost.
  Dataset data({"a", "b"});
  Xoshiro256 rng(2);
  for (int i = 0; i < 80; ++i) {
    const double a = rng.uniform(1, 50);
    const double b = rng.uniform(1, 20);
    data.add(std::array<double, 2>{a, b}, 1e-6 * a * b);
  }
  const SymbolicModel model = fit_symbolic(data, fast_params(3));
  EXPECT_LT(test_mape(model, data), 5.0);
}

TEST(SymReg, LinearScalingAbsorbsMagnitude) {
  // Targets at microsecond scale: the GP sees O(1) shapes thanks to
  // (scale, offset) refitting.
  Dataset data({"x"});
  for (double x = 1; x <= 40; ++x)
    data.add(std::array<double, 1>{x}, 4.2e-8 * x + 1.1e-7);
  const SymbolicModel model = fit_symbolic(data, fast_params(4));
  EXPECT_LT(test_mape(model, data), 1.0);
}

TEST(SymReg, DeterministicForSeed) {
  Dataset data({"x"});
  Xoshiro256 rng(5);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(1, 10);
    data.add(std::array<double, 1>{x}, x * x);
  }
  const SymbolicModel a = fit_symbolic(data, fast_params(7));
  const SymbolicModel b = fit_symbolic(data, fast_params(7));
  EXPECT_EQ(a.expr().to_tokens(), b.expr().to_tokens());
  EXPECT_DOUBLE_EQ(a.scale(), b.scale());
}

TEST(SymReg, GeneralizesOnHeldOutData) {
  Dataset all({"np", "ngp"});
  Xoshiro256 rng(6);
  for (int i = 0; i < 150; ++i) {
    const double np = rng.uniform(1, 200);
    const double ngp = rng.uniform(0, 50);
    all.add(std::array<double, 2>{np, ngp}, 2e-7 * (np + ngp) + 1e-6);
  }
  const auto [train, test] = all.split(0.7, 9);
  const SymbolicModel model = fit_symbolic(train, fast_params(10));
  EXPECT_LT(test_mape(model, test), 5.0);
}

TEST(SymReg, SizeBoundsRespected) {
  Dataset data({"x"});
  for (double x = 1; x <= 30; ++x)
    data.add(std::array<double, 1>{x}, std::sqrt(x) + x);
  SymRegParams params = fast_params(11);
  params.max_nodes = 16;
  params.max_depth = 4;
  const SymbolicModel model = fit_symbolic(data, params);
  EXPECT_LE(model.expr().size(), 16u);
  EXPECT_LE(model.expr().depth(), 4);
}

TEST(SymReg, DescribeMentionsScale) {
  Dataset data({"x"});
  for (double x = 1; x <= 10; ++x)
    data.add(std::array<double, 1>{x}, 2 * x);
  const SymbolicModel model = fit_symbolic(data, fast_params(12));
  EXPECT_NE(model.describe().find("*"), std::string::npos);
  EXPECT_EQ(model.serialize().rfind("sym ", 0), 0u);
}

TEST(SymReg, EmptyDatasetThrows) {
  Dataset data({"x"});
  EXPECT_THROW(fit_symbolic(data, fast_params()), Error);
}

TEST(SymReg, TinyPopulationThrows) {
  Dataset data({"x"});
  data.add(std::array<double, 1>{1.0}, 1.0);
  SymRegParams params = fast_params();
  params.population = 1;
  EXPECT_THROW(fit_symbolic(data, params), Error);
}

}  // namespace
}  // namespace picp
