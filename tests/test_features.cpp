#include "core/features.hpp"

#include "util/error.hpp"

#include <gtest/gtest.h>

namespace picp {
namespace {

TEST(KernelFeatures, RegistryShapes) {
  EXPECT_EQ(kernel_features(Kernel::kInterpolate),
            (std::vector<std::string>{"np"}));
  EXPECT_EQ(kernel_features(Kernel::kEqSolve),
            (std::vector<std::string>{"np"}));
  EXPECT_EQ(kernel_features(Kernel::kPush),
            (std::vector<std::string>{"np"}));
  EXPECT_EQ(kernel_features(Kernel::kProject),
            (std::vector<std::string>{"np", "ngp", "filter"}));
  EXPECT_EQ(kernel_features(Kernel::kCreateGhost),
            (std::vector<std::string>{"np", "ngp", "filter"}));
  EXPECT_EQ(kernel_features(Kernel::kMigrate),
            (std::vector<std::string>{"np", "nmove"}));
  EXPECT_EQ(kernel_features(Kernel::kFluid),
            (std::vector<std::string>{"nel"}));
}

TEST(FeaturesFromRecord, PullsRecordedValues) {
  TimingRecord rec;
  rec.np = 12;
  rec.ngp = 5;
  rec.nmove = 3;
  rec.filter = 0.07;
  EXPECT_EQ(features_from_record(Kernel::kPush, rec),
            (std::vector<double>{12.0}));
  EXPECT_EQ(features_from_record(Kernel::kProject, rec),
            (std::vector<double>{12.0, 5.0, 0.07}));
  EXPECT_EQ(features_from_record(Kernel::kMigrate, rec),
            (std::vector<double>{12.0, 3.0}));
  rec.nel = 63;
  EXPECT_EQ(features_from_record(Kernel::kFluid, rec),
            (std::vector<double>{63.0}));
}

TEST(FeaturesFromWorkload, PullsGeneratedValues) {
  WorkloadResult workload;
  workload.num_ranks = 3;
  workload.comp_real = CompMatrix(3, 2);
  workload.comp_ghost = CompMatrix(3, 2);
  workload.comm_real = CommMatrix(3, 2);
  workload.comp_real.set(1, 0, 40);
  workload.comp_ghost.set(1, 0, 7);
  workload.comm_real.add(0, 1, 0, 4);
  workload.comm_real.add(2, 1, 0, 2);

  EXPECT_EQ(features_from_workload(Kernel::kInterpolate, workload, 1, 0, 0.1),
            (std::vector<double>{40.0}));
  EXPECT_EQ(features_from_workload(Kernel::kProject, workload, 1, 0, 0.1),
            (std::vector<double>{40.0, 7.0, 0.1}));
  // Migration features: owned particles scanned + receive-side arrivals.
  EXPECT_EQ(features_from_workload(Kernel::kMigrate, workload, 1, 0, 0.1),
            (std::vector<double>{40.0, 6.0}));
  // Idle rank: all-zero features.
  EXPECT_EQ(features_from_workload(Kernel::kProject, workload, 2, 0, 0.1),
            (std::vector<double>{0.0, 0.0, 0.1}));
  // Fluid features come from the static element partition.
  workload.elements_per_rank = {10, 20, 30};
  EXPECT_EQ(features_from_workload(Kernel::kFluid, workload, 1, 0, 0.1),
            (std::vector<double>{20.0}));
}

TEST(FeaturesFromWorkload, FluidWithoutElementCountsThrows) {
  WorkloadResult workload;
  workload.num_ranks = 2;
  workload.comp_real = CompMatrix(2, 1);
  workload.comp_ghost = CompMatrix(2, 1);
  workload.comm_real = CommMatrix(2, 1);
  EXPECT_THROW(features_from_workload(Kernel::kFluid, workload, 0, 0, 0.1),
               Error);
}

TEST(FeatureSides, RecordAndWorkloadAgreeOnNames) {
  // Both sides must produce vectors matching kernel_features order.
  TimingRecord rec;
  rec.np = 1;
  rec.ngp = 2;
  rec.nmove = 3;
  rec.filter = 4;
  for (int k = 0; k < kNumKernels; ++k) {
    const auto kernel = static_cast<Kernel>(k);
    EXPECT_EQ(features_from_record(kernel, rec).size(),
              kernel_features(kernel).size());
  }
}

}  // namespace
}  // namespace picp
