// measure_adaptive repetition policy, pinned down with an injected fake
// clock. Real wall-clock assertions on this loop are flaky under sanitizers
// and loaded CI machines; the scripted clock makes warm-up, min_seconds
// adaptation, max_reps capping, and min-of-windows selection exact.

#include <gtest/gtest.h>

#include "picsim/instrumentation.hpp"

namespace picp {
namespace {

// Passive clock over a global scripted timeline: the measured function
// advances `now` by whatever cost the test scripts, and each clock instance
// (one per timing window) reports elapsed time since its construction.
struct ScriptedClock {
  static inline double now = 0.0;
  double start = now;
  double seconds() const { return now - start; }
};

TEST(MeasureAdaptive, StopsEachWindowAtMinSeconds) {
  ScriptedClock::now = 0.0;
  int calls = 0;
  const auto work = [&calls] {
    ++calls;
    ScriptedClock::now += 1e-6;
  };
  const double per_rep = measure_adaptive<ScriptedClock>(
      work, /*min_seconds=*/4.5e-6, /*max_reps=*/128, /*windows=*/3);
  // Each window accumulates reps until elapsed >= 4.5us: five 1us reps.
  // Plus the single warm-up call before any window opens.
  EXPECT_EQ(calls, 1 + 3 * 5);
  EXPECT_DOUBLE_EQ(per_rep, 5e-6 / 5);
}

TEST(MeasureAdaptive, MaxRepsCapsAWindowThatNeverReachesMinSeconds) {
  ScriptedClock::now = 0.0;
  int calls = 0;
  const auto work = [&calls] {
    ++calls;
    ScriptedClock::now += 1e-9;
  };
  const double per_rep = measure_adaptive<ScriptedClock>(
      work, /*min_seconds=*/1.0, /*max_reps=*/7, /*windows=*/2);
  EXPECT_EQ(calls, 1 + 2 * 7);
  EXPECT_DOUBLE_EQ(per_rep, 1e-9);
}

TEST(MeasureAdaptive, ReturnsTheMinimumAcrossWindows) {
  // Window 1 runs at 1us/rep, later windows at 4us/rep (an OS-preemption
  // spike): the estimator must report the clean window.
  ScriptedClock::now = 0.0;
  int calls = 0;
  const auto work = [&calls] {
    ++calls;
    ScriptedClock::now += calls <= 4 ? 1e-6 : 4e-6;  // warm-up + window 1
  };
  const double per_rep = measure_adaptive<ScriptedClock>(
      work, /*min_seconds=*/3e-6, /*max_reps=*/128, /*windows=*/3);
  EXPECT_DOUBLE_EQ(per_rep, 1e-6);
}

TEST(MeasureAdaptive, WarmUpRunsExactlyOnceBeforeTiming) {
  ScriptedClock::now = 0.0;
  // The warm-up call costs 100us; timed reps cost 1us. If warm-up leaked
  // into a window the per-rep estimate would be wildly inflated.
  int calls = 0;
  const auto work = [&calls] {
    ++calls;
    ScriptedClock::now += calls == 1 ? 100e-6 : 1e-6;
  };
  const double per_rep = measure_adaptive<ScriptedClock>(
      work, /*min_seconds=*/2.5e-6, /*max_reps=*/128, /*windows=*/2);
  // NEAR, not EQ: the 100us warm-up shifts the timeline, so the 1us
  // differences pick up ~1 ulp of accumulation error.
  EXPECT_NEAR(per_rep, 3e-6 / 3, 1e-12);
}

TEST(MeasureAdaptive, DefaultStopwatchPathStillMeasures) {
  // Smoke only — no duration assertions on the real clock.
  int calls = 0;
  const double per_rep =
      measure_adaptive([&calls] { ++calls; }, 1e-9, /*max_reps=*/4,
                       /*windows=*/1);
  EXPECT_GE(per_rep, 0.0);
  EXPECT_GE(calls, 2);       // warm-up + at least one timed rep
  EXPECT_LE(calls, 1 + 4);
}

}  // namespace
}  // namespace picp
