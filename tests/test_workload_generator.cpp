#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "mapping/bin_mapper.hpp"
#include "mapping/element_mapper.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

struct World {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 8, 8, 8, 3};
  MeshPartition partition{rcb_partition(mesh, 8)};
};

std::vector<TraceSample> drifting_cloud(std::size_t np, std::size_t samples,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> pos(np);
  for (auto& p : pos)
    p = Vec3(rng.uniform(0.05, 0.4), rng.uniform(0.05, 0.4),
             rng.uniform(0.05, 0.4));
  std::vector<TraceSample> out(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    out[s].iteration = s * 10;
    out[s].positions = pos;
    // Drift particles so some cross element/rank boundaries each interval.
    for (auto& p : pos) {
      p.x = std::min(p.x + 0.03, 0.95);
      p.y = std::min(p.y + 0.02, 0.95);
      p.z = std::min(p.z + 0.04, 0.95);
    }
  }
  return out;
}

WorkloadParams default_params() {
  WorkloadParams params;
  params.ghost_radius = 0.05;
  return params;
}

TEST(WorkloadGenerator, RealLoadConservesParticles) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadGenerator gen(w.mesh, w.partition, mapper, default_params());
  const auto samples = drifting_cloud(800, 6, 1);
  const WorkloadResult result = gen.generate(samples);
  ASSERT_EQ(result.num_intervals(), 6u);
  for (std::size_t t = 0; t < 6; ++t)
    EXPECT_EQ(result.comp_real.interval_total(t), 800);
}

TEST(WorkloadGenerator, IterationsRecorded) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadGenerator gen(w.mesh, w.partition, mapper, default_params());
  const auto samples = drifting_cloud(100, 4, 2);
  const WorkloadResult result = gen.generate(samples);
  ASSERT_EQ(result.iterations.size(), 4u);
  EXPECT_EQ(result.iterations[0], 0u);
  EXPECT_EQ(result.iterations[3], 30u);
}

// The fundamental flow-conservation property tying P_comp to P_comm:
// comp[r][t] - comp[r][t-1] == inflow(r, t) - outflow(r, t).
TEST(WorkloadGenerator, CommMatrixConsistentWithCompDeltas) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadGenerator gen(w.mesh, w.partition, mapper, default_params());
  const auto samples = drifting_cloud(1200, 8, 3);
  const WorkloadResult result = gen.generate(samples);
  bool any_movement = false;
  for (std::size_t t = 1; t < result.num_intervals(); ++t) {
    if (result.comm_real.interval_volume(t) > 0) any_movement = true;
    for (Rank r = 0; r < w.partition.num_ranks(); ++r) {
      const std::int64_t delta =
          result.comp_real.at(r, t) - result.comp_real.at(r, t - 1);
      const std::int64_t net = result.comm_real.received_by(r, t) -
                               result.comm_real.sent_by(r, t);
      EXPECT_EQ(delta, net) << "rank " << r << " interval " << t;
    }
  }
  EXPECT_TRUE(any_movement);  // the drift must actually cross boundaries
}

TEST(WorkloadGenerator, GhostsTargetBoundaryRanks) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadGenerator gen(w.mesh, w.partition, mapper, default_params());
  const auto samples = drifting_cloud(1000, 3, 4);
  const WorkloadResult result = gen.generate(samples);
  // Some particles sit within the filter radius of foreign rank regions.
  std::int64_t total_ghosts = 0;
  for (std::size_t t = 0; t < result.num_intervals(); ++t)
    total_ghosts += result.comp_ghost.interval_total(t);
  EXPECT_GT(total_ghosts, 0);
  // Ghost communication volume equals ghost computation load (each ghost is
  // sent exactly once from its owner).
  for (std::size_t t = 0; t < result.num_intervals(); ++t)
    EXPECT_EQ(result.comm_ghost.interval_volume(t),
              result.comp_ghost.interval_total(t));
}

TEST(WorkloadGenerator, DisableGhostsAndComm) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadParams params;
  params.ghost_radius = 0.0;
  params.compute_ghosts = false;
  params.compute_comm = false;
  WorkloadGenerator gen(w.mesh, w.partition, mapper, params);
  const auto samples = drifting_cloud(500, 4, 5);
  const WorkloadResult result = gen.generate(samples);
  for (std::size_t t = 0; t < result.num_intervals(); ++t) {
    EXPECT_EQ(result.comp_ghost.interval_total(t), 0);
    EXPECT_EQ(result.comm_real.interval_volume(t), 0);
  }
}

TEST(WorkloadGenerator, MaxIntervalsLimits) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadParams params = default_params();
  params.max_intervals = 3;
  WorkloadGenerator gen(w.mesh, w.partition, mapper, params);
  const auto samples = drifting_cloud(200, 10, 6);
  EXPECT_EQ(gen.generate(samples).num_intervals(), 3u);
}

TEST(WorkloadGenerator, IntervalStrideSkipsSamples) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  WorkloadParams params = default_params();
  params.interval_stride = 3;
  WorkloadGenerator gen(w.mesh, w.partition, mapper, params);
  const auto samples = drifting_cloud(200, 10, 7);
  const WorkloadResult result = gen.generate(samples);
  ASSERT_EQ(result.num_intervals(), 4u);  // samples 0, 3, 6, 9
  EXPECT_EQ(result.iterations[1], 30u);
}

TEST(WorkloadGenerator, StreamingMatchesInMemory) {
  World w;
  const auto samples = drifting_cloud(600, 5, 8);
  const std::string path = testing::TempDir() + "/picp_gen_stream.bin";
  {
    TraceWriter writer(path, 600, 10, w.mesh.domain(), CoordKind::kFloat64);
    for (const auto& s : samples) writer.append(s.iteration, s.positions);
  }
  ElementMapper m1(w.mesh, w.partition);
  ElementMapper m2(w.mesh, w.partition);
  WorkloadGenerator gen_mem(w.mesh, w.partition, m1, default_params());
  WorkloadGenerator gen_stream(w.mesh, w.partition, m2, default_params());
  const WorkloadResult a = gen_mem.generate(samples);
  TraceReader reader(path);
  const WorkloadResult b = gen_stream.generate(reader);
  ASSERT_EQ(a.num_intervals(), b.num_intervals());
  for (std::size_t t = 0; t < a.num_intervals(); ++t)
    for (Rank r = 0; r < 8; ++r) {
      EXPECT_EQ(a.comp_real.at(r, t), b.comp_real.at(r, t));
      EXPECT_EQ(a.comp_ghost.at(r, t), b.comp_ghost.at(r, t));
    }
  std::remove(path.c_str());
}

TEST(WorkloadGenerator, BinMapperPartitionsRecorded) {
  World w;
  BinMapper mapper(8, 0.05);
  WorkloadGenerator gen(w.mesh, w.partition, mapper, default_params());
  const auto samples = drifting_cloud(500, 4, 9);
  const WorkloadResult result = gen.generate(samples);
  ASSERT_EQ(result.partitions_per_interval.size(), 4u);
  for (const std::int64_t bins : result.partitions_per_interval) {
    EXPECT_GE(bins, 1);
    EXPECT_LE(bins, 8);
  }
}

TEST(WorkloadGenerator, ParallelGhostSearchBitIdenticalToSerial) {
  World w;
  const auto samples = drifting_cloud(1500, 6, 21);
  ElementMapper m_serial(w.mesh, w.partition);
  WorkloadGenerator serial(w.mesh, w.partition, m_serial, default_params());
  const WorkloadResult a = serial.generate(samples);

  for (const std::size_t threads : {2u, 4u, 7u}) {
    ElementMapper m_par(w.mesh, w.partition);
    WorkloadParams params = default_params();
    params.threads = threads;
    WorkloadGenerator parallel(w.mesh, w.partition, m_par, params);
    const WorkloadResult b = parallel.generate(samples);
    ASSERT_EQ(a.num_intervals(), b.num_intervals());
    for (std::size_t t = 0; t < a.num_intervals(); ++t) {
      for (Rank r = 0; r < 8; ++r) {
        EXPECT_EQ(a.comp_real.at(r, t), b.comp_real.at(r, t));
        EXPECT_EQ(a.comp_ghost.at(r, t), b.comp_ghost.at(r, t))
            << "threads=" << threads << " r=" << r << " t=" << t;
      }
      EXPECT_EQ(a.comm_real.interval_volume(t),
                b.comm_real.interval_volume(t));
      EXPECT_EQ(a.comm_ghost.interval_volume(t),
                b.comm_ghost.interval_volume(t));
      // Full sparse equality of the ghost communication slice.
      const auto ta = a.comm_ghost.interval_transfers(t);
      const auto tb = b.comm_ghost.interval_transfers(t);
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t k = 0; k < ta.size(); ++k) {
        EXPECT_EQ(ta[k].from, tb[k].from);
        EXPECT_EQ(ta[k].to, tb[k].to);
        EXPECT_EQ(ta[k].count, tb[k].count);
      }
    }
  }
}

TEST(WorkloadGenerator, MismatchedRanksThrow) {
  World w;
  BinMapper mapper(16, 0.05);  // partition has 8 ranks
  EXPECT_THROW(
      WorkloadGenerator(w.mesh, w.partition, mapper, default_params()),
      Error);
}

}  // namespace
}  // namespace picp
