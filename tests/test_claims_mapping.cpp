// Claims: bin-based vs element-based mapping quality, and the projection
// filter parameter study.
//   Fig 8  — bin-based mapping cuts the peak particle workload by a large
//            factor (paper: ~two orders of magnitude at production scale).
//   Fig 9  — bin-based mapping uses far more of the machine (paper: 56.13%
//            resource utilization vs 0.68% for element-based at R=1044).
//   Fig 10a — smaller projection filters generate more bins.
//   Fig 10b — larger filters create more ghost particles and slow the
//             create_ghost_particles kernel down.

#include <gtest/gtest.h>

#include "core/claims.hpp"
#include "picsim/instrumentation.hpp"
#include "picsim/kernels.hpp"
#include "support/claims_fixture.hpp"
#include "support/shape_gtest.hpp"
#include "trace/trace_reader.hpp"
#include "workload/ghost_finder.hpp"

namespace picp::testing {
namespace {

TEST(ClaimsFig8, BinMappingCutsPeakWorkload) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();

  for (const Rank ranks : claims_rank_counts()) {
    const std::int64_t element_peak =
        claims::mapping_workload(mesh, fixture.trace_path, ranks, "element",
                                 cfg.filter_size)
            .comp_real.global_max();
    const std::int64_t bin_peak =
        claims::mapping_workload(mesh, fixture.trace_path, ranks, "bin",
                                 cfg.filter_size)
            .comp_real.global_max();
    // Paper: ~100x at production scale; the fixture's shallow bin tree
    // yields ~6x. Gate at 4x — still far outside mapping-noise territory.
    EXPECT_SHAPE(shape::above_threshold(
        claims::peak_ratio(element_peak, bin_peak), 4.0,
        "Fig 8 element/bin peak-workload ratio at R=" +
            std::to_string(ranks)));
  }
}

TEST(ClaimsFig9, BinMappingUtilizesFarMoreProcessors) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();
  const Rank base = claims_rank_counts().front();

  const double bin_ru =
      claims::utilization_claim(
          claims::mapping_workload(mesh, fixture.trace_path, base, "bin",
                                   cfg.filter_size)
              .comp_real)
          .resource_utilization_pct;
  const double element_ru =
      claims::utilization_claim(
          claims::mapping_workload(mesh, fixture.trace_path, base, "element",
                                   cfg.filter_size)
              .comp_real)
          .resource_utilization_pct;

  // Paper: 56.13% vs 0.68% at R=1044 (an 82x gap); fixture: ~76% vs ~5%.
  EXPECT_SHAPE(shape::above_threshold(bin_ru, 30.0,
                                      "Fig 9 bin-based RU (%)"));
  EXPECT_SHAPE(shape::below_threshold(element_ru, 15.0,
                                      "Fig 9 element-based RU (%)"));
  EXPECT_SHAPE(shape::above_threshold(bin_ru / element_ru, 5.0,
                                      "Fig 9 bin/element RU ratio"));
}

TEST(ClaimsFig10a, SmallerFilterGeneratesMoreBins) {
  const ClaimsFixture& fixture = claims_fixture();

  std::vector<double> max_bins;
  for (const double filter : claims_filter_sweep())
    max_bins.push_back(static_cast<double>(
        claims::relaxed_bin_growth(fixture.trace_path, filter).max_bins));

  EXPECT_SHAPE(shape::monotone_decreasing(max_bins));
  EXPECT_SHAPE(shape::above_threshold(
      max_bins.front() / max_bins.back(), 3.0,
      "Fig 10a bin-count span (smallest/largest filter)"));
}

TEST(ClaimsFig10b, LargerFilterCreatesMoreGhostsAndSlowsTheKernel) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();
  const MeshPartition partition =
      rcb_partition(mesh, claims_rank_counts().front());

  GasParams gas_params = cfg.gas;
  const GasModel gas(gas_params, cfg.domain);
  SolverKernels kernels(mesh, gas, cfg.physics);

  // Final trace sample: the expanded cloud, the expensive regime.
  TraceSample sample;
  {
    TraceReader trace(fixture.trace_path);
    while (trace.read_next(sample)) {
    }
  }
  std::vector<std::uint32_t> ids(sample.positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<std::uint32_t>(i);

  std::vector<double> ghost_counts;
  std::vector<double> kernel_seconds;
  for (const double filter : claims_filter_sweep()) {
    const GhostFinder finder(mesh, partition, filter);
    std::vector<GhostRecord> ghosts;
    const double seconds = measure_adaptive(
        [&] {
          kernels.create_ghost(sample.positions, ids, /*owner=*/-1, finder,
                               ghosts);
        },
        5e-3, 16);
    ghost_counts.push_back(static_cast<double>(ghosts.size()));
    kernel_seconds.push_back(seconds);
  }

  // Ghost counts are a deterministic function of the trace: strict.
  EXPECT_SHAPE(shape::monotone_increasing(ghost_counts));
  // Kernel time is wall clock: generous slack (min-of-windows measurement
  // plus 40% tolerance) so only a real shape inversion fails.
  EXPECT_SHAPE(shape::monotone_increasing(kernel_seconds, 0.40));
  EXPECT_SHAPE(shape::span_ratio_at_least(
      kernel_seconds, 1.3, "Fig 10b create_ghost slowdown (largest/smallest "
                           "filter)"));
}

}  // namespace
}  // namespace picp::testing
