// Exit-code and stdout contract of `picpredict trace verify|repair` — the
// operator-facing surface of the salvage machinery. Scripts branch on these
// exit codes (0 intact / usable, 1 damaged / unrecoverable, 2 usage), so
// they are API, not presentation. Drives the real binary (path injected at
// configure time via PICP_PICPREDICT_BINARY).

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd =
      std::string("'") + PICP_PICPREDICT_BINARY + "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) !=
         nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_trace(const std::string& name, std::size_t samples = 3) {
  const std::string path = testing::TempDir() + "/" + name;
  TraceWriter writer(path, 5, 10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     CoordKind::kFloat64);
  Xoshiro256 rng(7);
  std::vector<Vec3> pos(5);
  for (std::size_t s = 0; s < samples; ++s) {
    for (auto& p : pos)
      p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    writer.append(s * 10, pos);
  }
  writer.close();
  return path;
}

TEST(CliTrace, NoArgumentsPrintsUsageAndExits2) {
  const CliResult result = run_cli("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliTrace, UnknownTraceSubcommandExits2) {
  const std::string path = write_trace("cli_sub.bin");
  const CliResult result = run_cli("trace frobnicate '" + path + "'");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown trace subcommand"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTrace, VerifyIntactTraceExits0) {
  const std::string path = write_trace("cli_intact.bin");
  const CliResult result = run_cli("trace verify '" + path + "'");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("sealed"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("ok"), std::string::npos) << result.output;
  // Clean bill of health must not suggest a repair.
  EXPECT_EQ(result.output.find("recoverable:"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliTrace, VerifyDamagedTraceExits1AndNamesTheRepairCommand) {
  const std::string path = write_trace("cli_damaged.bin");
  fs::resize_file(path, fs::file_size(path) - 30);  // into the last frame
  const CliResult result = run_cli("trace verify '" + path + "'");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("recoverable:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("trace repair"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliTrace, VerifyMissingFileExits1WithTypedError) {
  const CliResult result =
      run_cli("trace verify '" + testing::TempDir() + "/no_such.trace'");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("picpredict:"), std::string::npos)
      << result.output;
}

TEST(CliTrace, RepairDamagedTraceExits0AndProducesStrictReadableOutput) {
  const std::string path = write_trace("cli_repair_in.bin");
  fs::resize_file(path, fs::file_size(path) - 30);  // samples 0..1 survive
  const std::string fixed = testing::TempDir() + "/cli_repair_out.bin";

  const CliResult result =
      run_cli("trace repair '" + path + "' --out '" + fixed + "'");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("recovered 2 samples"), std::string::npos)
      << result.output;

  TraceReader reader(fixed);  // strict open: must be fully sealed
  EXPECT_EQ(reader.num_samples(), 2u);

  // verify on the repaired file closes the loop.
  const CliResult verify = run_cli("trace verify '" + fixed + "'");
  EXPECT_EQ(verify.exit_code, 0) << verify.output;

  std::remove(path.c_str());
  std::remove(fixed.c_str());
}

TEST(CliTrace, RepairWithNothingRecoverableExits1) {
  // Keep the header but decapitate every frame.
  const std::string path = write_trace("cli_repair_none.bin");
  fs::resize_file(path, 93);  // header (92 bytes) + 1 stray byte
  const std::string fixed = testing::TempDir() + "/cli_repair_none_out.bin";
  const CliResult result =
      run_cli("trace repair '" + path + "' --out '" + fixed + "'");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("recovered 0 samples"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
  std::remove(fixed.c_str());
}

TEST(CliTrace, RepairWithoutOutFlagExits2) {
  const std::string path = write_trace("cli_repair_noout.bin");
  const CliResult result = run_cli("trace repair '" + path + "'");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("missing --out"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
