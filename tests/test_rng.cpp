#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace picp {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformBelowBounds) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  EXPECT_EQ(rng.uniform_below(0), 0u);
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Xoshiro256 base(23);
  Xoshiro256 s0 = base.fork(0);
  Xoshiro256 s1 = base.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0() == s1()) ++same;
  EXPECT_LT(same, 2);
  // Forking is deterministic.
  Xoshiro256 s0b = base.fork(0);
  EXPECT_EQ(s0b(), Xoshiro256(base.fork(0))());
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), first);
  EXPECT_NE(splitmix64(state2), first);  // state advanced
}

}  // namespace
}  // namespace picp
