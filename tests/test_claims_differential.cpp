// Differential and property harnesses backing the claims tier:
//   - streaming (TraceReader) and in-memory (span) workload generation
//     produce identical matrices, across randomized simulation seeds;
//   - the picsim trace producer is byte-identical for 1 and N threads,
//     across randomized seeds (the PR 1 invariant, now a property test);
//   - the bin mapper respects its structural invariants (completeness,
//     conservation, bin-size threshold, bin budget) over randomized particle
//     clouds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "mapping/bin_mapper.hpp"
#include "mapping/mapper.hpp"
#include "picsim/sim_driver.hpp"
#include "support/claims_fixture.hpp"
#include "trace/trace_reader.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace picp::testing {
namespace {

namespace fs = std::filesystem;

// Small, fast config for the differential runs; the seed randomizes the
// initial particle bed.
SimConfig differential_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.points_per_dim = 4;
  cfg.bed.num_particles = 1200;
  cfg.bed.seed = seed;
  cfg.num_iterations = 200;
  cfg.sample_every = 25;
  cfg.num_ranks = 16;
  cfg.filter_size = 0.08;
  cfg.trace_float64 = false;
  return cfg;
}

std::string scratch_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void expect_same_comp(const CompMatrix& a, const CompMatrix& b,
                      const char* what, std::uint64_t seed) {
  ASSERT_EQ(a.num_ranks(), b.num_ranks()) << what << " seed " << seed;
  ASSERT_EQ(a.num_intervals(), b.num_intervals()) << what << " seed " << seed;
  for (std::size_t t = 0; t < a.num_intervals(); ++t) {
    const auto ia = a.interval(t);
    const auto ib = b.interval(t);
    for (std::size_t r = 0; r < ia.size(); ++r)
      ASSERT_EQ(ia[r], ib[r]) << what << " differs at interval " << t
                              << ", rank " << r << " (seed " << seed << ")";
  }
}

TEST(ClaimsDifferential, StreamingMatchesInMemoryWorkload) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const SimConfig cfg = differential_config(seed);
    const std::string trace_path =
        scratch_path("claims_diff_stream_" + std::to_string(seed) +
                     ".trace");
    SimDriver driver(cfg);
    driver.run(trace_path);

    const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                            cfg.points_per_dim);
    const MeshPartition partition = rcb_partition(mesh, cfg.num_ranks);
    const auto mapper =
        make_mapper("bin", mesh, partition, cfg.filter_size);
    WorkloadParams params;
    params.ghost_radius = cfg.filter_size;
    params.compute_ghosts = true;
    params.compute_comm = true;
    WorkloadGenerator generator(mesh, partition, *mapper, params);

    TraceReader trace(trace_path);
    const WorkloadResult streamed = generator.generate(trace);
    const std::vector<TraceSample> samples = read_full_trace(trace_path);
    const WorkloadResult in_memory = generator.generate(samples);

    ASSERT_EQ(streamed.iterations, in_memory.iterations) << "seed " << seed;
    expect_same_comp(streamed.comp_real, in_memory.comp_real, "comp_real",
                     seed);
    expect_same_comp(streamed.comp_ghost, in_memory.comp_ghost, "comp_ghost",
                     seed);
    ASSERT_EQ(streamed.partitions_per_interval,
              in_memory.partitions_per_interval)
        << "seed " << seed;
    ASSERT_EQ(streamed.comm_real.num_intervals(),
              in_memory.comm_real.num_intervals());
    for (std::size_t t = 0; t < streamed.comm_real.num_intervals(); ++t) {
      ASSERT_EQ(streamed.comm_real.interval_volume(t),
                in_memory.comm_real.interval_volume(t))
          << "comm_real volume differs at interval " << t << " (seed "
          << seed << ")";
      ASSERT_EQ(streamed.comm_ghost.interval_volume(t),
                in_memory.comm_ghost.interval_volume(t))
          << "comm_ghost volume differs at interval " << t << " (seed "
          << seed << ")";
    }
    std::remove(trace_path.c_str());
  }
}

TEST(ClaimsDifferential, ThreadCountLeavesTracesByteIdentical) {
  for (const std::uint64_t seed : {5u, 17u, 29u}) {
    SimConfig cfg = differential_config(seed);

    cfg.threads = 1;
    const std::string single_path =
        scratch_path("claims_diff_t1_" + std::to_string(seed) + ".trace");
    SimDriver single(cfg);
    single.run(single_path);

    cfg.threads = 4;
    const std::string multi_path =
        scratch_path("claims_diff_t4_" + std::to_string(seed) + ".trace");
    SimDriver multi(cfg);
    multi.run(multi_path);

    const std::vector<char> single_bytes = file_bytes(single_path);
    const std::vector<char> multi_bytes = file_bytes(multi_path);
    ASSERT_FALSE(single_bytes.empty()) << "seed " << seed;
    ASSERT_EQ(single_bytes, multi_bytes)
        << "1-thread and 4-thread traces differ for seed " << seed;
    std::remove(single_path.c_str());
    std::remove(multi_path.c_str());
  }
}

TEST(ClaimsProperty, BinMapperInvariantsOverRandomClouds) {
  Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t np = 64 + rng.uniform_below(1500);
    const double extent = 0.5 + rng.uniform(0.0, 2.0);
    std::vector<Vec3> positions(np);
    for (Vec3& p : positions)
      p = {rng.uniform(0.0, extent), rng.uniform(0.0, extent),
           rng.uniform(0.0, 2.0 * extent)};

    const Rank num_ranks = static_cast<Rank>(2 + rng.uniform_below(62));
    const double threshold = 0.05 + rng.uniform(0.0, 0.3);

    // Capped build: the bin budget (the processor count) is respected.
    BinMapper capped(num_ranks, threshold);
    std::vector<Rank> owners;
    capped.map(positions, owners);

    ASSERT_EQ(owners.size(), np);
    for (const Rank owner : owners) {
      ASSERT_GE(owner, 0) << "trial " << trial;
      ASSERT_LT(owner, num_ranks) << "trial " << trial;
    }
    ASSERT_LE(capped.tree().num_bins(), num_ranks)
        << "bin budget exceeded in trial " << trial;

    // Completeness + conservation: every particle lands in exactly one bin.
    std::int64_t binned = 0;
    for (std::int32_t b = 0; b < capped.tree().num_bins(); ++b)
      binned += capped.tree().bin_count(b);
    ASSERT_EQ(binned, static_cast<std::int64_t>(np)) << "trial " << trial;
    for (std::size_t i = 0; i < np; ++i) {
      const std::int32_t bin = capped.tree().bin_of_built(i);
      ASSERT_GE(bin, 0);
      ASSERT_LT(bin, capped.tree().num_bins());
      ASSERT_EQ(owners[i], capped.rank_of_bin(bin)) << "trial " << trial;
    }

    // Relaxed build: without a budget, every multi-particle bin's longest
    // extent has reached the threshold bin size.
    BinMapper relaxed(1, threshold, BinTree::kUnlimitedBins);
    relaxed.map(positions, owners);
    for (std::int32_t b = 0; b < relaxed.tree().num_bins(); ++b) {
      if (relaxed.tree().bin_count(b) <= 1) continue;
      const Aabb& bounds = relaxed.tree().bin_bounds(b);
      const Vec3 size = {bounds.hi.x - bounds.lo.x, bounds.hi.y - bounds.lo.y,
                         bounds.hi.z - bounds.lo.z};
      const double longest = std::max({size.x, size.y, size.z});
      ASSERT_LE(longest, threshold + 1e-12)
          << "bin " << b << " not subdivided to the threshold in trial "
          << trial;
    }
  }
}

TEST(ClaimsProperty, PartitionIsCompleteAndDisjoint) {
  Xoshiro256 rng(977);
  const SpectralMesh mesh = claims_mesh();
  for (int trial = 0; trial < 8; ++trial) {
    const Rank num_ranks = static_cast<Rank>(2 + rng.uniform_below(510));
    const MeshPartition partition = rcb_partition(mesh, num_ranks);

    // Every element is owned by exactly one valid rank (the owners vector
    // is the disjoint cover), and the per-rank tallies agree with it.
    const std::vector<Rank>& owners = partition.element_owners();
    std::vector<std::int64_t> counted(static_cast<std::size_t>(num_ranks),
                                      0);
    for (const Rank owner : owners) {
      ASSERT_GE(owner, 0) << "R=" << num_ranks;
      ASSERT_LT(owner, num_ranks) << "R=" << num_ranks;
      ++counted[static_cast<std::size_t>(owner)];
    }
    ASSERT_EQ(counted, partition.elements_per_rank()) << "R=" << num_ranks;
    std::int64_t total = 0;
    for (const std::int64_t c : counted) total += c;
    ASSERT_EQ(total, static_cast<std::int64_t>(owners.size()));
  }
}

}  // namespace
}  // namespace picp::testing
