#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

std::vector<Vec3> random_positions(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 2));
  return out;
}

class TraceRoundTrip : public testing::TestWithParam<CoordKind> {};

TEST_P(TraceRoundTrip, PreservesSamples) {
  // Param-unique name: ctest runs each instantiation as its own process.
  const std::string path = testing::TempDir() + "/picp_trace_rt_" +
                           std::to_string(static_cast<int>(GetParam())) +
                           ".bin";
  const Aabb domain(Vec3(0, 0, 0), Vec3(1, 1, 2));
  const std::size_t np = 100;
  std::vector<std::vector<Vec3>> samples;
  {
    TraceWriter writer(path, np, 50, domain, GetParam());
    for (std::uint64_t s = 0; s < 5; ++s) {
      samples.push_back(random_positions(np, s + 1));
      writer.append(s * 50, samples.back());
    }
    writer.close();
    EXPECT_EQ(writer.samples_written(), 5u);
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.num_particles(), np);
  EXPECT_EQ(reader.num_samples(), 5u);
  EXPECT_EQ(reader.header().sample_stride, 50u);
  EXPECT_EQ(reader.header().coord_kind, GetParam());

  const double tol = GetParam() == CoordKind::kFloat64 ? 0.0 : 1e-6;
  TraceSample sample;
  std::size_t s = 0;
  while (reader.read_next(sample)) {
    EXPECT_EQ(sample.iteration, s * 50);
    ASSERT_EQ(sample.positions.size(), np);
    for (std::size_t i = 0; i < np; ++i) {
      EXPECT_NEAR(sample.positions[i].x, samples[s][i].x, tol);
      EXPECT_NEAR(sample.positions[i].y, samples[s][i].y, tol);
      EXPECT_NEAR(sample.positions[i].z, samples[s][i].z, tol);
    }
    ++s;
  }
  EXPECT_EQ(s, 5u);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Kinds, TraceRoundTrip,
                         testing::Values(CoordKind::kFloat32,
                                         CoordKind::kFloat64));

TEST(TraceIo, RewindRestartsAtFirstSample) {
  const std::string path = testing::TempDir() + "/picp_trace_rw.bin";
  {
    TraceWriter writer(path, 10, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    writer.append(0, random_positions(10, 1));
    writer.append(1, random_positions(10, 2));
  }
  TraceReader reader(path);
  TraceSample a, b;
  ASSERT_TRUE(reader.read_next(a));
  ASSERT_TRUE(reader.read_next(b));
  EXPECT_FALSE(reader.read_next(b));
  reader.rewind();
  EXPECT_EQ(reader.cursor(), 0u);
  TraceSample again;
  ASSERT_TRUE(reader.read_next(again));
  EXPECT_EQ(again.iteration, a.iteration);
  EXPECT_EQ(again.positions.size(), a.positions.size());
  std::remove(path.c_str());
}

TEST(TraceIo, DomainStoredInHeader) {
  const std::string path = testing::TempDir() + "/picp_trace_dom.bin";
  const Aabb domain(Vec3(-1, -2, -3), Vec3(4, 5, 6));
  {
    TraceWriter writer(path, 3, 7, domain);
    writer.append(0, random_positions(3, 1));
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.header().domain.lo, domain.lo);
  EXPECT_EQ(reader.header().domain.hi, domain.hi);
  std::remove(path.c_str());
}

TEST(TraceIo, WrongParticleCountThrows) {
  const std::string path = testing::TempDir() + "/picp_trace_bad.bin";
  TraceWriter writer(path, 10, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  EXPECT_THROW(writer.append(0, random_positions(9, 1)), Error);
  std::remove(path.c_str());
}

TEST(TraceIo, DestructorPatchesHeader) {
  const std::string path = testing::TempDir() + "/picp_trace_dtor.bin";
  {
    TraceWriter writer(path, 4, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    writer.append(0, random_positions(4, 1));
    // no explicit close
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.num_samples(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, NotATraceFileThrows) {
  const std::string path = testing::TempDir() + "/picp_not_trace.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace file at all, definitely long enough";
  }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(TraceReader reader("/nonexistent/trace.bin"), Error);
}

TEST(TraceIo, V2IsTheDefaultAndLeavesNoPartial) {
  const std::string path = testing::TempDir() + "/picp_trace_v2.bin";
  {
    TraceWriter writer(path, 8, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    writer.append(0, random_positions(8, 1));
    // While the writer is open, only the staging `.part` exists — the
    // final name never holds a torn file.
    EXPECT_FALSE(std::ifstream(path, std::ios::binary).is_open());
    EXPECT_TRUE(
        std::ifstream(writer.partial_path(), std::ios::binary).is_open());
    writer.close();
  }
  EXPECT_FALSE(
      std::ifstream(path + ".part", std::ios::binary).is_open());
  TraceReader reader(path);
  EXPECT_EQ(reader.header().version, 2u);
  EXPECT_EQ(reader.num_samples(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, V1WriterRoundTripsForLegacyCompat) {
  const std::string path = testing::TempDir() + "/picp_trace_v1.bin";
  const auto positions = random_positions(6, 3);
  {
    TraceWriter writer(path, 6, 4, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                       CoordKind::kFloat64, 1);
    writer.append(8, positions);
    writer.close();
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.header().version, 1u);
  EXPECT_EQ(reader.num_samples(), 1u);
  TraceSample sample;
  ASSERT_TRUE(reader.read_next(sample));
  EXPECT_EQ(sample.iteration, 8u);
  ASSERT_EQ(sample.positions.size(), 6u);
  EXPECT_EQ(sample.positions[5].z, positions[5].z);
  std::remove(path.c_str());
}

TEST(TraceIo, OverwriteKeepsOldTraceUntilSealed) {
  const std::string path = testing::TempDir() + "/picp_trace_ow.bin";
  {
    TraceWriter writer(path, 2, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    writer.append(0, random_positions(2, 1));
    writer.close();
  }
  {
    TraceWriter writer(path, 2, 1, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    writer.append(0, random_positions(2, 2));
    writer.append(1, random_positions(2, 3));
    // The previous sealed trace is still what readers see mid-write.
    TraceReader old_reader(path);
    EXPECT_EQ(old_reader.num_samples(), 1u);
    writer.close();
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.num_samples(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIo, ReadFullTraceHelper) {
  const std::string path = testing::TempDir() + "/picp_trace_full.bin";
  {
    TraceWriter writer(path, 5, 2, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                       CoordKind::kFloat64);
    writer.append(0, random_positions(5, 1));
    writer.append(2, random_positions(5, 2));
    writer.append(4, random_positions(5, 3));
  }
  const auto samples = read_full_trace(path);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[2].iteration, 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
