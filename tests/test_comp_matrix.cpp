#include "workload/comp_matrix.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(CompMatrix, ZeroInitialized) {
  const CompMatrix m(4, 3);
  for (std::size_t t = 0; t < 3; ++t)
    for (Rank r = 0; r < 4; ++r) EXPECT_EQ(m.at(r, t), 0);
}

TEST(CompMatrix, SetAddAt) {
  CompMatrix m(4, 2);
  m.set(1, 0, 5);
  m.add(1, 0, 3);
  m.add(2, 1, 7);
  EXPECT_EQ(m.at(1, 0), 8);
  EXPECT_EQ(m.at(2, 1), 7);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(CompMatrix, IntervalViews) {
  CompMatrix m(3, 2);
  m.set(0, 1, 10);
  m.set(2, 1, 4);
  const auto row = m.interval(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 10);
  EXPECT_EQ(row[1], 0);
  EXPECT_EQ(row[2], 4);
}

TEST(CompMatrix, IntervalStats) {
  CompMatrix m(4, 2);
  m.set(0, 0, 2);
  m.set(3, 0, 9);
  EXPECT_EQ(m.interval_max(0), 9);
  EXPECT_EQ(m.interval_total(0), 11);
  EXPECT_EQ(m.interval_active(0), 2);
  EXPECT_EQ(m.interval_max(1), 0);
  EXPECT_EQ(m.interval_active(1), 0);
  EXPECT_EQ(m.global_max(), 9);
}

TEST(CompMatrix, WriteCsv) {
  CompMatrix m(2, 2);
  m.set(0, 0, 1);
  m.set(1, 1, 2);
  const std::string path = testing::TempDir() + "/picp_comp.csv";
  m.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "interval,rank0,rank1");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,0");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0,2");
  std::remove(path.c_str());
}

TEST(CompMatrix, RejectsZeroRanks) {
  EXPECT_THROW(CompMatrix(0, 2), Error);
}

}  // namespace
}  // namespace picp
