#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

/// Synthetic instrumented run: every kernel's time follows a known law.
KernelTimings synthetic_timings(std::size_t rows, std::uint64_t seed) {
  KernelTimings timings;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    TimingRecord rec;
    rec.interval = static_cast<std::uint32_t>(i % 10);
    rec.rank = static_cast<Rank>(i % 16);
    rec.np = std::floor(rng.uniform(1, 500));
    rec.ngp = std::floor(rng.uniform(0, 100));
    rec.nmove = std::floor(rng.uniform(0, 50));
    rec.filter = 0.05;

    rec.kernel = Kernel::kInterpolate;
    rec.seconds = 3e-8 * rec.np + 2e-7;
    timings.add(rec);
    rec.kernel = Kernel::kEqSolve;
    rec.seconds = 5e-8 * rec.np + 1e-7;
    timings.add(rec);
    rec.kernel = Kernel::kPush;
    rec.seconds = 1e-8 * rec.np + 5e-8;
    timings.add(rec);
    rec.kernel = Kernel::kProject;
    rec.seconds = 2e-9 * (rec.np + rec.ngp) * 125 + 1e-7;
    timings.add(rec);
    rec.kernel = Kernel::kCreateGhost;
    rec.seconds = 4e-8 * rec.np + 8e-8 * rec.ngp + 1e-7;
    timings.add(rec);
    rec.kernel = Kernel::kMigrate;
    rec.seconds = 2e-8 * rec.nmove + 3e-8;
    timings.add(rec);
  }
  return timings;
}

ModelGenConfig fast_config() {
  ModelGenConfig config;
  config.symreg.population = 96;
  config.symreg.generations = 20;
  config.symreg.threads = 1;
  return config;
}

TEST(Trainer, FitsAllKernelsPresent) {
  const KernelTimings timings = synthetic_timings(200, 1);
  TrainReport report;
  const ModelSet models = train_models(timings, fast_config(), &report);
  EXPECT_EQ(models.kernels().size(), 6u);
  EXPECT_EQ(report.kernels.size(), 6u);
  for (const auto& fit : report.kernels) {
    EXPECT_GT(fit.rows, 0u);
    EXPECT_FALSE(fit.formula.empty());
  }
}

TEST(Trainer, LinearKernelsFitTightly) {
  const KernelTimings timings = synthetic_timings(300, 2);
  TrainReport report;
  train_models(timings, fast_config(), &report);
  for (const auto& fit : report.kernels) {
    if (fit.kernel == "interpolate" || fit.kernel == "push" ||
        fit.kernel == "eq_solve") {
      EXPECT_LT(fit.train_mape, 1.0) << fit.kernel;
    }
  }
}

TEST(Trainer, PredictionsMatchGroundTruthLaw) {
  const KernelTimings timings = synthetic_timings(300, 3);
  const ModelSet models = train_models(timings, fast_config());
  // interpolate(np = 250) should be ~ 3e-8 * 250 + 2e-7.
  const double predicted =
      models.predict("interpolate", std::array<double, 1>{250.0});
  EXPECT_NEAR(predicted, 3e-8 * 250 + 2e-7, 0.1 * (3e-8 * 250));
}

TEST(Trainer, ForcedPolynomialMethod) {
  const KernelTimings timings = synthetic_timings(200, 4);
  ModelGenConfig config = fast_config();
  config.method = FitMethod::kPolynomial;
  config.poly_degree = 2;
  TrainReport report;
  const ModelSet models = train_models(timings, config, &report);
  EXPECT_TRUE(models.has("project"));
  for (const auto& fit : report.kernels)
    EXPECT_LT(fit.train_mape, 10.0) << fit.kernel;
}

TEST(Trainer, MinSecondsFiltersNoise) {
  KernelTimings timings = synthetic_timings(50, 5);
  // Add junk rows with absurd times below the floor.
  TimingRecord junk;
  junk.kernel = Kernel::kPush;
  junk.np = 1000;
  junk.seconds = 1e-12;
  for (int i = 0; i < 20; ++i) timings.add(junk);
  ModelGenConfig config = fast_config();
  config.min_seconds = 1e-9;
  TrainReport report;
  train_models(timings, config, &report);
  for (const auto& fit : report.kernels) {
    if (fit.kernel == "push") {
      EXPECT_EQ(fit.rows, 50u);
    }
  }
}

TEST(Trainer, MissingKernelsSkipped) {
  KernelTimings timings;
  TimingRecord rec;
  rec.kernel = Kernel::kPush;
  for (int i = 1; i <= 30; ++i) {
    rec.np = i * 10;
    rec.seconds = 1e-8 * rec.np;
    timings.add(rec);
  }
  const ModelSet models = train_models(timings, fast_config());
  EXPECT_EQ(models.kernels(), (std::vector<std::string>{"push"}));
}

TEST(Trainer, EmptyTimingsThrow) {
  EXPECT_THROW(train_models(KernelTimings(), fast_config()), Error);
}

TEST(Trainer, FitMethodNames) {
  EXPECT_EQ(fit_method_from_name("linear"), FitMethod::kLinear);
  EXPECT_EQ(fit_method_from_name("POLY"), FitMethod::kPolynomial);
  EXPECT_EQ(fit_method_from_name("symreg"), FitMethod::kSymbolic);
  EXPECT_EQ(fit_method_from_name("auto"), FitMethod::kAuto);
  EXPECT_THROW(fit_method_from_name("magic"), Error);
}

}  // namespace
}  // namespace picp
