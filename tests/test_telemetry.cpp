// Telemetry metrics registry + session: lock-free hot paths under the
// thread pool, histogram bucket-edge semantics, the disabled-mode
// zero-allocation guarantee, and the session lifecycle (configure resets
// values, summary_line).

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

// --- Program-wide allocation counter ----------------------------------------
// Replacing global operator new/delete is the only way to observe "the
// disabled telemetry path allocates nothing" without a heap profiler. The
// replacement forwards to malloc/free with only the counting added.
//
// Not under ASan: its pairing check tags allocations made through its own
// operator-new interceptor (e.g. inside libstdc++), and releasing those via
// a free()-based replacement delete is reported as an alloc-dealloc
// mismatch. The zero-allocation test skips itself there.
#if defined(__SANITIZE_ADDRESS__)
#define PICP_COUNTS_ALLOCATIONS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PICP_COUNTS_ALLOCATIONS 0
#endif
#endif
#ifndef PICP_COUNTS_ALLOCATIONS
#define PICP_COUNTS_ALLOCATIONS 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if PICP_COUNTS_ALLOCATIONS

// GCC pairs the replaced operator new with the library free() it inlines
// into and warns; the pairing is correct here (new forwards to malloc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // PICP_COUNTS_ALLOCATIONS

namespace picp::telemetry {
namespace {

/// Every test runs against the process-wide singletons, so each starts from
/// a freshly configured session (values zeroed, spans dropped).
class TelemetrySession : public ::testing::Test {
 protected:
  void SetUp() override {
    SessionOptions options;  // enabled, memory-only (no directory)
    configure(options);
  }
  void TearDown() override {
    SessionOptions options;
    options.enabled = false;
    configure(options);
  }
};

TEST_F(TelemetrySession, CounterAndGaugeBasics) {
  Counter& c = registry().counter("test.basic_counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = registry().gauge("test.basic_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_EQ(snap.counter_value("test.basic_counter"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("test.basic_gauge"), 2.5);
  EXPECT_EQ(snap.counter_value("test.never_registered"), 0u);
}

TEST_F(TelemetrySession, RegistryReturnsStableReferences) {
  Counter& first = registry().counter("test.stable");
  Counter& second = registry().counter("test.stable");
  EXPECT_EQ(&first, &second);
  // reset_values (via configure) zeroes but never invalidates.
  first.add(7);
  SessionOptions options;
  configure(options);
  EXPECT_EQ(second.value(), 0u);
  second.add(1);
  EXPECT_EQ(first.value(), 1u);
}

TEST_F(TelemetrySession, HistogramBucketEdges) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  Histogram& h = registry().histogram("test.edges", bounds);

  // Bucket i is (bounds[i-1], bounds[i]] — an observation exactly on a
  // bound lands in that bound's bucket, the next representable value above
  // it in the following one.
  h.observe(0.5);                      // bucket 0
  h.observe(1.0);                      // bucket 0 (inclusive upper edge)
  h.observe(std::nextafter(1.0, 2.0)); // bucket 1
  h.observe(2.0);                      // bucket 1
  h.observe(4.0);                      // bucket 2
  h.observe(4.0001);                   // overflow
  h.observe(1e9);                      // overflow

  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + std::nextafter(1.0, 2.0) + 2.0 + 4.0 +
                           4.0001 + 1e9,
              1e-6);
}

TEST_F(TelemetrySession, HistogramRejectsBadBounds) {
  EXPECT_THROW(registry().histogram("test.empty_bounds", std::vector<double>{}),
               Error);
  EXPECT_THROW(registry().histogram("test.unsorted_bounds",
                                    std::vector<double>{2.0, 1.0}),
               Error);
  EXPECT_THROW(registry().histogram("test.duplicate_bounds",
                                    std::vector<double>{1.0, 1.0}),
               Error);
}

TEST_F(TelemetrySession, ConcurrentIncrementsUnderThreadPool) {
  Counter& c = registry().counter("test.concurrent");
  Histogram& h =
      registry().histogram("test.concurrent_hist", std::vector<double>{0.5});
  constexpr std::size_t kItems = 200000;
  ThreadPool pool(4);
  pool.parallel_for(kItems, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.add();
      h.observe(i % 2 == 0 ? 0.25 : 1.0);
    }
  });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.count(), kItems);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0] + counts[1], kItems);
  EXPECT_EQ(counts[0], kItems / 2);
}

TEST_F(TelemetrySession, PhasesAccumulateAndSpansRecord) {
  if (!PICP_TELEMETRY_ENABLED)
    GTEST_SKIP() << "built with PICP_TELEMETRY=OFF: spans are compiled out";
  Phase& ph = phase("test.phase");
  {
    const ScopedSpan span("test.phase", ph, "test");
  }
  {
    const ScopedSpan span("test.phase");  // name-resolved variant
  }
  EXPECT_EQ(ph.count(), 2u);
  EXPECT_GE(ph.wall_seconds(), 0.0);
  EXPECT_EQ(tracer().span_count(), 2u);

  bool found = false;
  for (const PhaseTotal& total : phase_totals())
    if (total.name == "test.phase") {
      found = true;
      EXPECT_EQ(total.count, 2u);
    }
  EXPECT_TRUE(found);
}

TEST_F(TelemetrySession, SummaryLineNamesHottestPhase) {
  Phase& ph = phase("test.hot_phase");
  ph.add(12.0, 11.0);
  const std::string line = summary_line();
  EXPECT_NE(line.find("test.hot_phase"), std::string::npos) << line;
  EXPECT_NE(line.find("telemetry:"), std::string::npos) << line;
}

TEST_F(TelemetrySession, PublishPoolStatsExportsUtilization) {
  if (!PICP_TELEMETRY_ENABLED)
    GTEST_SKIP() << "built with PICP_TELEMETRY=OFF: publishing is a no-op";
  ThreadPoolStats stats;
  stats.tasks = 10;
  stats.queue_wait_seconds = 0.25;
  stats.max_queue_wait_seconds = 0.1;
  stats.worker_busy_seconds = {1.0, 3.0};
  stats.busy_seconds = 4.0;
  stats.lifetime_seconds = 4.0;
  publish_pool_stats(stats);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_EQ(snap.counter_value("threadpool.tasks"), 10u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("threadpool.workers"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauge_value("threadpool.utilization"), 0.5);
  EXPECT_DOUBLE_EQ(snap.gauge_value("threadpool.worker.1.busy_fraction"),
                   0.75);
}

TEST(TelemetryDisabled, HotPathsAreNoOpsAndAllocationFree) {
  // Register (and thereby allocate) everything while a session is live...
  {
    SessionOptions options;
    configure(options);
  }
  Counter& c = registry().counter("test.disabled_counter");
  Phase& ph = phase("test.disabled_phase");
  {
    SessionOptions options;
    options.enabled = false;
    configure(options);
  }
  ASSERT_FALSE(enabled());
  const std::uint64_t spans_before = tracer().span_count();

  // ...then drive the hot paths with telemetry off: no spans buffered, no
  // phase totals accumulated, and not a single heap allocation. (The
  // allocation delta is only meaningful when PICP_COUNTS_ALLOCATIONS — under
  // ASan the counter stays zero and this check degrades to a no-op.)
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const ScopedSpan span("test.disabled_span");
    const ScopedSpan with_phase("test.disabled_phase", ph, "test");
    c.add();
  }
  const std::uint64_t allocs_after =
      g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after - allocs_before, 0u);
  EXPECT_EQ(tracer().span_count(), spans_before);
  EXPECT_EQ(ph.count(), 0u);
  // Counters themselves stay live (cheap, and callers may not guard), but
  // a fresh configure() zeroes them for the next session.
  EXPECT_EQ(c.value(), 1000u);
  SessionOptions options;
  configure(options);
  EXPECT_EQ(c.value(), 0u);
  options.enabled = false;
  configure(options);
}

TEST(TelemetryDisabled, BuildManifestStillWorks) {
  SessionOptions options;
  options.enabled = false;
  configure(options);
  set_run_info("unit-test", 0xabcd, 3);
  const RunManifest manifest = build_manifest();
  EXPECT_EQ(manifest.command, "unit-test");
  EXPECT_EQ(manifest.threads, 3u);
}

}  // namespace
}  // namespace picp::telemetry
