#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto config = Config::from_string(
      "top = 1\n"
      "[system]\n"
      "num_ranks = 1044\n"
      "[app]\n"
      "mapper = bin\n"
      "filter = 0.023\n");
  EXPECT_EQ(config.get_int("top"), 1);
  EXPECT_EQ(config.get_int("system.num_ranks"), 1044);
  EXPECT_EQ(config.get_string("app.mapper"), "bin");
  EXPECT_DOUBLE_EQ(config.get_double("app.filter"), 0.023);
}

TEST(Config, CommentsAndWhitespace) {
  const auto config = Config::from_string(
      "; full-line comment\n"
      "  key =  value  # trailing comment\n"
      "\n"
      "other=1;comment\n");
  EXPECT_EQ(config.get_string("key"), "value");
  EXPECT_EQ(config.get_int("other"), 1);
}

TEST(Config, MissingKeyThrowsOrFallsBack) {
  const auto config = Config::from_string("a = 1\n");
  EXPECT_THROW(config.get_string("missing"), Error);
  EXPECT_THROW(config.get_int("missing"), Error);
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_EQ(config.get_string("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(config.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(config.get_bool("missing", true));
}

TEST(Config, HasAndSet) {
  Config config;
  EXPECT_FALSE(config.has("x"));
  config.set("x", "3");
  EXPECT_TRUE(config.has("x"));
  EXPECT_EQ(config.get_int("x"), 3);
}

TEST(Config, IntList) {
  const auto config =
      Config::from_string("ranks = 1044, 2088, 4176, 8352\n");
  const auto list = config.get_int_list("ranks");
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0], 1044);
  EXPECT_EQ(list[3], 8352);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::from_string("[section\nx=1\n"), Error);
  EXPECT_THROW(Config::from_string("no equals sign\n"), Error);
  EXPECT_THROW(Config::from_string("= value\n"), Error);
}

TEST(Config, TypeErrorsThrow) {
  const auto config = Config::from_string("x = hello\n");
  EXPECT_THROW(config.get_int("x"), Error);
  EXPECT_THROW(config.get_double("x"), Error);
  EXPECT_THROW(config.get_bool("x"), Error);
}

TEST(Config, LaterValueWins) {
  const auto config = Config::from_string("a = 1\na = 2\n");
  EXPECT_EQ(config.get_int("a"), 2);
}

TEST(Config, KeysAreSorted) {
  const auto config = Config::from_string("b = 1\na = 2\n[s]\nc = 3\n");
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "s.c");
}

TEST(Config, FromFileRoundTrip) {
  const std::string path = testing::TempDir() + "/picp_config_test.ini";
  {
    std::ofstream out(path);
    out << "[run]\niters = 99\n";
  }
  const auto config = Config::from_file(path);
  EXPECT_EQ(config.get_int("run.iters"), 99);
  std::remove(path.c_str());
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/picp.ini"), Error);
}

}  // namespace
}  // namespace picp
