#include "picsim/kernels.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

struct KernelWorld {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 4, 4, 4, 5};
  MeshPartition partition{block_partition(mesh, 4)};
  GasParams gas_params = [] {
    GasParams p;
    p.center = Vec3(0.5, 0.5, -0.2);
    return p;
  }();
  GasModel gas{gas_params, mesh.domain()};
  PhysicsParams physics;
  SolverKernels kernels{mesh, gas, physics};
};

std::vector<std::uint32_t> all_ids(std::size_t n) {
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

TEST(KernelNames, RoundTrip) {
  for (int k = 0; k < kNumKernels; ++k) {
    const auto kernel = static_cast<Kernel>(k);
    EXPECT_EQ(kernel_from_name(kernel_name(kernel)), kernel);
  }
  EXPECT_THROW(kernel_from_name("nope"), Error);
}

TEST(InterpolateKernel, WritesOnlyListedParticles) {
  KernelWorld w;
  const std::vector<Vec3> pos = {Vec3(0.2, 0.2, 0.2), Vec3(0.8, 0.8, 0.8)};
  std::vector<Vec3> gas_out(2, Vec3(99, 99, 99));
  const std::vector<std::uint32_t> subset = {1};
  w.kernels.interpolate(pos, subset, 0.5, gas_out);
  EXPECT_EQ(gas_out[0], Vec3(99, 99, 99));  // untouched
  EXPECT_NE(gas_out[1], Vec3(99, 99, 99));
}

TEST(EqSolveKernel, DragPullsTowardGasVelocity) {
  KernelWorld w;
  const std::vector<Vec3> pos = {Vec3(0.5, 0.5, 0.5)};
  const std::vector<Vec3> vel = {Vec3(0, 0, 0)};
  const std::vector<Vec3> gas = {Vec3(1, 0, 0)};
  CollisionGrid grid(0.1);
  grid.rebuild(pos);
  std::vector<Vec3> out(1);
  w.kernels.eq_solve(vel, gas, grid, all_ids(1), out);
  // dv = dt * ((u - v)/tau + g)
  const double dt = w.physics.dt;
  EXPECT_NEAR(out[0].x, dt * (1.0 / w.physics.drag_tau), 1e-15);
  EXPECT_NEAR(out[0].z, dt * w.physics.gravity.z, 1e-15);
}

TEST(EqSolveKernel, CollisionsRepelOverlappingParticles) {
  KernelWorld w;
  PhysicsParams physics;
  physics.collision_radius = 0.05;
  physics.collision_stiffness = 100.0;
  SolverKernels kernels(w.mesh, w.gas, physics);
  const std::vector<Vec3> pos = {Vec3(0.50, 0.5, 0.5), Vec3(0.52, 0.5, 0.5)};
  const std::vector<Vec3> vel = {Vec3(), Vec3()};
  const std::vector<Vec3> gas(2);  // no drag force (vel == gas)
  CollisionGrid grid(physics.collision_radius);
  grid.rebuild(pos);
  std::vector<Vec3> out(2);
  kernels.eq_solve(vel, gas, grid, all_ids(2), out);
  EXPECT_LT(out[0].x, 0.0);  // pushed left
  EXPECT_GT(out[1].x, 0.0);  // pushed right
  EXPECT_NEAR(out[0].x, -out[1].x, 1e-15);  // Newton's third law
}

TEST(PushKernel, AdvancesByVelocity) {
  KernelWorld w;
  const std::vector<Vec3> pos = {Vec3(0.5, 0.5, 0.5)};
  std::vector<Vec3> vel = {Vec3(1, 2, -1)};
  std::vector<Vec3> out(1);
  w.kernels.push(pos, vel, all_ids(1), out);
  const double dt = w.physics.dt;
  EXPECT_NEAR(out[0].x, 0.5 + dt, 1e-15);
  EXPECT_NEAR(out[0].y, 0.5 + 2 * dt, 1e-15);
  EXPECT_NEAR(out[0].z, 0.5 - dt, 1e-15);
}

TEST(PushKernel, ReflectsAtWallsAndStaysInside) {
  KernelWorld w;
  const Aabb& domain = w.mesh.domain();
  // Particle about to cross the upper z wall.
  const std::vector<Vec3> pos = {Vec3(0.5, 0.5, 0.99999)};
  std::vector<Vec3> vel = {Vec3(0, 0, 10.0)};
  std::vector<Vec3> out(1);
  w.kernels.push(pos, vel, all_ids(1), out);
  EXPECT_LT(out[0].z, domain.hi.z);
  EXPECT_GT(out[0].z, domain.lo.z);
  EXPECT_LT(vel[0].z, 0.0);  // bounced
  EXPECT_NEAR(vel[0].z, -10.0 * w.physics.wall_restitution, 1e-12);
}

TEST(PushKernel, HardKickStaysInDomain) {
  KernelWorld w;
  Xoshiro256 rng(3);
  std::vector<Vec3> pos(100);
  std::vector<Vec3> vel(100);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    vel[i] = Vec3(rng.uniform(-5000, 5000), rng.uniform(-5000, 5000),
                  rng.uniform(-5000, 5000));
  }
  std::vector<Vec3> out(100);
  w.kernels.push(pos, vel, all_ids(100), out);
  for (const Vec3& p : out) {
    EXPECT_TRUE(w.mesh.domain().contains(p)) << p;
  }
}

TEST(ProjectKernel, DepositsWithinFilterSupport) {
  KernelWorld w;
  ProjectionField field(w.mesh.points_per_dim());
  const std::vector<Vec3> pos = {Vec3(0.125, 0.125, 0.125)};  // element center
  const std::int64_t updates =
      w.kernels.project(pos, all_ids(1), 0.05, field);
  EXPECT_GT(updates, 0);
  EXPECT_EQ(field.occupied_elements(), 1u);
  // All deposited weight is positive and on the particle's element.
  const auto data = field.element_data(w.mesh.element_of(pos[0]));
  double total = 0.0;
  for (const double v : data) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

TEST(ProjectKernel, LargerFilterMoreUpdates) {
  KernelWorld w;
  Xoshiro256 rng(7);
  std::vector<Vec3> pos(200);
  for (auto& p : pos)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  std::int64_t prev = 0;
  for (const double filter : {0.02, 0.05, 0.1, 0.2}) {
    ProjectionField field(w.mesh.points_per_dim());
    const std::int64_t updates =
        w.kernels.project(pos, all_ids(200), filter, field);
    EXPECT_GE(updates, prev) << "filter=" << filter;
    prev = updates;
  }
}

TEST(ProjectKernel, RejectsNonPositiveFilter) {
  KernelWorld w;
  ProjectionField field(w.mesh.points_per_dim());
  const std::vector<Vec3> pos = {Vec3(0.5, 0.5, 0.5)};
  EXPECT_THROW(w.kernels.project(pos, all_ids(1), 0.0, field), Error);
}

TEST(CreateGhostKernel, MatchesGhostFinder) {
  KernelWorld w;
  GhostFinder finder(w.mesh, w.partition, 0.1);
  Xoshiro256 rng(11);
  std::vector<Vec3> pos(300);
  for (auto& p : pos)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  std::vector<GhostRecord> out;
  const std::size_t made =
      w.kernels.create_ghost(pos, all_ids(300), /*owner=*/0, finder, out);
  EXPECT_EQ(made, out.size());
  // Cross-check each record against a direct finder query.
  std::vector<Rank> near;
  std::size_t expected = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    finder.ranks_near(pos[i], 0, near);
    expected += near.size();
  }
  EXPECT_EQ(made, expected);
  for (const GhostRecord& rec : out) EXPECT_NE(rec.target, 0);
}

TEST(MigrateKernel, PacksOnlyMoversWithFullState) {
  KernelWorld w;
  std::vector<Vec3> pos(5), vel(5);
  for (std::size_t i = 0; i < 5; ++i) {
    pos[i] = Vec3(0.1 * static_cast<double>(i), 0.5, 0.5);
    vel[i] = Vec3(0, 0, static_cast<double>(i));
  }
  const std::vector<Rank> prev = {0, 0, 1, 2, 3};
  const std::vector<Rank> curr = {0, 1, 1, 3, 3};
  std::vector<MigrantRecord> out;
  const std::size_t movers =
      w.kernels.migrate(pos, vel, all_ids(5), prev, curr, out);
  EXPECT_EQ(movers, 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].particle, 1u);
  EXPECT_EQ(out[0].position, pos[1]);
  EXPECT_EQ(out[0].velocity, vel[1]);
  EXPECT_EQ(out[1].particle, 3u);
}

TEST(FluidKernel, UpdatesEveryGridPointOfListedElements) {
  KernelWorld w;
  ProjectionField field(w.mesh.points_per_dim());
  const std::vector<ElementId> elements = {0, 5, 9};
  const std::int64_t updates = w.kernels.fluid_update(elements, 0.5, field);
  EXPECT_EQ(updates, 3 * w.mesh.points_per_element());
  EXPECT_EQ(field.occupied_elements(), 3u);
}

TEST(FluidKernel, RelaxesTowardGasMagnitudeBehindFront) {
  KernelWorld w;
  ProjectionField field(w.mesh.points_per_dim());
  const std::vector<ElementId> elements = {w.mesh.element_of(
      Vec3(0.5, 0.5, 0.1))};
  // Late time: front has swept the element, amplitude small but non-zero.
  for (int step = 0; step < 50; ++step)
    w.kernels.fluid_update(elements, 0.2, field);
  const auto data = field.element_data(elements[0]);
  // After many relaxation steps the field approaches the target: non-zero.
  double total = 0.0;
  for (const double v : data) total += v;
  EXPECT_GT(total, 0.0);
}

TEST(ProjectionFieldTest, ClearReleasesElements) {
  ProjectionField field(3);
  field.element_data(5);
  field.element_data(9);
  EXPECT_EQ(field.occupied_elements(), 2u);
  field.clear();
  EXPECT_EQ(field.occupied_elements(), 0u);
}

TEST(ProjectionFieldTest, DataSizedByPointsPerDim) {
  ProjectionField field(4);
  EXPECT_EQ(field.element_data(0).size(), 64u);
  EXPECT_THROW(ProjectionField(1), Error);
}

TEST(ProjectionFieldTest, ClearZeroesTouchedBlocksInPlace) {
  ProjectionField field(3);
  auto data = field.element_data(2);
  data[0] = 5.0;
  data[26] = -1.0;
  field.clear();
  EXPECT_EQ(field.occupied_elements(), 0u);
  for (const double v : field.element_data(2)) EXPECT_EQ(v, 0.0);
}

TEST(ProjectionFieldTest, TouchedElementsRecordFirstTouchOrder) {
  ProjectionField field(3);
  field.element_data(7);
  field.element_data(2);
  field.element_data(7);  // repeat touch must not duplicate
  ASSERT_EQ(field.touched_elements().size(), 2u);
  EXPECT_EQ(field.touched_elements()[0], 7);
  EXPECT_EQ(field.touched_elements()[1], 2);
}

TEST(ProjectionFieldTest, HintPreSizesWithoutMarkingTouched) {
  ProjectionField field(3, /*num_elements_hint=*/10);
  EXPECT_EQ(field.occupied_elements(), 0u);
  auto data = field.element_data(9);
  EXPECT_EQ(data.size(), 27u);
  for (const double v : data) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(field.occupied_elements(), 1u);
}

TEST(SolverKernelsTest, PhysicsKernelsCallableThroughConstRef) {
  // The driver shares one kernels object across worker threads; the solver
  // trio must stay const so that sharing is safe by construction.
  KernelWorld w;
  const SolverKernels& kernels = w.kernels;
  const std::vector<Vec3> pos = {Vec3(0.5, 0.5, 0.5)};
  const std::vector<Vec3> vel = {Vec3()};
  std::vector<Vec3> gas_out(1, Vec3(99, 99, 99));
  std::vector<Vec3> vel_out(1), pos_out(1);
  std::vector<Vec3> vel_inout = vel;
  CollisionGrid grid(0.1);
  grid.rebuild(pos);
  kernels.interpolate(pos, all_ids(1), 0.5, gas_out);
  kernels.eq_solve(vel, gas_out, grid, all_ids(1), vel_out);
  kernels.push(pos, vel_inout, all_ids(1), pos_out);
  EXPECT_NE(gas_out[0], Vec3(99, 99, 99));
}

}  // namespace
}  // namespace picp
