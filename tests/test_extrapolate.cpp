#include "trace/extrapolate.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "mapping/bin_mapper.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

std::string write_drifting_trace(std::size_t np, std::size_t samples,
                                 const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  const Aabb domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Xoshiro256 rng(3);
  std::vector<Vec3> pos(np);
  for (auto& p : pos)
    p = Vec3(rng.uniform(0.2, 0.5), rng.uniform(0.2, 0.5),
             rng.uniform(0.1, 0.3));
  TraceWriter writer(path, np, 10, domain, CoordKind::kFloat64);
  for (std::size_t s = 0; s < samples; ++s) {
    writer.append(s * 10, pos);
    for (auto& p : pos) {
      p.x = std::min(p.x + 0.02, 0.95);
      p.z = std::min(p.z + 0.03, 0.95);
    }
  }
  return path;
}

TEST(Extrapolate, ProducesRequestedCountAndSamples) {
  const std::string in = write_drifting_trace(500, 6, "xp_in1.bin");
  const std::string out = testing::TempDir() + "/xp_out1.bin";
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 2000;
  EXPECT_EQ(extrapolate_trace(reader, out, params), 6u);
  TraceReader check(out);
  EXPECT_EQ(check.num_particles(), 2000u);
  EXPECT_EQ(check.num_samples(), 6u);
  EXPECT_EQ(check.header().sample_stride, 10u);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(Extrapolate, OriginalsPassThroughUnchanged) {
  const std::string in = write_drifting_trace(300, 4, "xp_in2.bin");
  const std::string out = testing::TempDir() + "/xp_out2.bin";
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 900;
  extrapolate_trace(reader, out, params);
  const auto original = read_full_trace(in);
  const auto extrapolated = read_full_trace(out);
  for (std::size_t s = 0; s < original.size(); ++s)
    for (std::size_t i = 0; i < 300; ++i)
      EXPECT_EQ(extrapolated[s].positions[i], original[s].positions[i]);
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(Extrapolate, ClonesFollowParents) {
  const std::string in = write_drifting_trace(200, 5, "xp_in3.bin");
  const std::string out = testing::TempDir() + "/xp_out3.bin";
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 600;
  extrapolate_trace(reader, out, params);
  const auto extrapolated = read_full_trace(out);
  // A clone's offset from its parent is constant across samples (unless
  // clamped at the domain boundary, which this trace never reaches).
  for (const std::size_t j : {200u, 350u, 599u}) {
    const std::size_t parent = j % 200;
    const Vec3 offset0 = extrapolated[0].positions[j] -
                         extrapolated[0].positions[parent];
    for (std::size_t s = 1; s < extrapolated.size(); ++s) {
      const Vec3 offset = extrapolated[s].positions[j] -
                          extrapolated[s].positions[parent];
      EXPECT_NEAR(offset.x, offset0.x, 1e-12);
      EXPECT_NEAR(offset.y, offset0.y, 1e-12);
      EXPECT_NEAR(offset.z, offset0.z, 1e-12);
    }
  }
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(Extrapolate, PositionsStayInDomain) {
  const std::string in = write_drifting_trace(200, 3, "xp_in4.bin");
  const std::string out = testing::TempDir() + "/xp_out4.bin";
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 1000;
  params.offset_scale = 50.0;  // huge offsets force clamping
  extrapolate_trace(reader, out, params);
  TraceReader check(out);
  const Aabb domain = check.header().domain;
  TraceSample sample;
  while (check.read_next(sample))
    for (const Vec3& p : sample.positions)
      EXPECT_TRUE(domain.contains_closed(p));
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(Extrapolate, PreservesWorkloadShape) {
  // The paper's intended use: bin decompositions of the synthetic trace
  // should look like the original's, with per-bin counts scaled ~3x.
  const std::string in = write_drifting_trace(2000, 4, "xp_in5.bin");
  const std::string out = testing::TempDir() + "/xp_out5.bin";
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 6000;
  extrapolate_trace(reader, out, params);

  const auto original = read_full_trace(in);
  const auto synthetic = read_full_trace(out);
  // Generous bin budget: the threshold (not the budget) must terminate the
  // recursion, so per-bin counts track density for both clouds.
  BinMapper mapper_a(512, 0.06);
  BinMapper mapper_b(512, 0.06);
  std::vector<Rank> owners;
  for (std::size_t s = 0; s < original.size(); ++s) {
    mapper_a.map(original[s].positions, owners);
    std::vector<std::int64_t> counts_a(512, 0);
    for (const Rank r : owners) ++counts_a[static_cast<std::size_t>(r)];
    mapper_b.map(synthetic[s].positions, owners);
    std::vector<std::int64_t> counts_b(512, 0);
    for (const Rank r : owners) ++counts_b[static_cast<std::size_t>(r)];
    const auto peak_a = *std::max_element(counts_a.begin(), counts_a.end());
    const auto peak_b = *std::max_element(counts_b.begin(), counts_b.end());
    EXPECT_NEAR(static_cast<double>(peak_b),
                3.0 * static_cast<double>(peak_a),
                1.0 * static_cast<double>(peak_a))
        << "sample " << s;
  }
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(Extrapolate, RejectsShrinking) {
  const std::string in = write_drifting_trace(100, 2, "xp_in6.bin");
  TraceReader reader(in);
  ExtrapolationParams params;
  params.target_particles = 50;
  EXPECT_THROW(extrapolate_trace(reader, testing::TempDir() + "/x.bin",
                                 params),
               Error);
  std::remove(in.c_str());
}

TEST(MeanSpacing, CubeRootOfVolumePerParticle) {
  // 1000 particles spread over a unit cube: spacing ~ 0.1.
  Xoshiro256 rng(5);
  std::vector<Vec3> pos(1000);
  for (auto& p : pos)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  EXPECT_NEAR(estimate_mean_spacing(pos), 0.1, 0.01);
  EXPECT_THROW(estimate_mean_spacing({}), Error);
}

}  // namespace
}  // namespace picp
