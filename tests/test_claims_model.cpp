// Claims: Fig 7 — per-kernel prediction accuracy. The paper reports an
// average MAPE of 8.42% with a 17.7% peak; the fixture's linear models over
// microsecond-scale kernels land near 7% aggregate MAPE, and the gates
// leave room for timer noise and sanitizer slowdowns while still failing
// on genuinely broken models (a constant predictor blows past 100%).
// As in the paper, models are trained on the extreme configurations only;
// the middle configuration is a pure prediction target.

#include <gtest/gtest.h>

#include "core/claims.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "core/validation.hpp"
#include "model/model_set.hpp"
#include "picsim/instrumentation.hpp"
#include "support/claims_fixture.hpp"
#include "support/shape_gtest.hpp"
#include "trace/trace_reader.hpp"

namespace picp::testing {
namespace {

TEST(ClaimsFig7, PredictionErrorStaysWithinGates) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const std::vector<Rank> ladder = claims_rank_counts();

  const ModelSet models = ModelSet::load(fixture.models_path);
  const SpectralMesh mesh = claims_mesh();
  const PredictionPipeline pipeline(mesh, models);
  const Predictor predictor(models, cfg.filter_size);

  const std::vector<std::pair<Rank, std::string>> configs = {
      {ladder[0], fixture.timings_base},
      {ladder[1], fixture.timings_mid},
      {ladder[3], fixture.timings_top},
  };

  claims::MapeSummary summary;
  for (const auto& [ranks, timings_path] : configs) {
    PredictionConfig pc;
    pc.mapper_kind = cfg.mapper_kind;
    pc.num_ranks = ranks;
    pc.filter_size = cfg.filter_size;
    TraceReader trace(fixture.trace_path);
    const WorkloadResult workload = pipeline.generate_workload(trace, pc);
    const KernelTimings measured = KernelTimings::load_csv(timings_path);
    summary.add(validate_predictions(measured, predictor, workload, 1e-6));
  }
  ASSERT_GT(summary.samples(), 0u);
  ASSERT_GE(summary.kernels(), 3u)
      << "Fig 7: expected per-kernel accuracy for at least three kernels";

  // Paper: 8.42% average; fixture measures ~7% aggregate / ~20% per-record.
  EXPECT_SHAPE(shape::below_threshold(summary.aggregate_mape(), 25.0,
                                      "Fig 7 aggregate MAPE (%)"));
  EXPECT_SHAPE(shape::below_threshold(summary.record_mape(), 50.0,
                                      "Fig 7 per-record MAPE (%)"));
  // Paper peak: 17.7%; fixture worst kernel ~37%.
  EXPECT_SHAPE(shape::below_threshold(summary.peak_kernel_mape(), 90.0,
                                      "Fig 7 worst per-kernel MAPE (%)"));
}

}  // namespace
}  // namespace picp::testing
