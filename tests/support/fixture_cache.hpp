#pragma once

// Content-addressed fixture cache shared by the test binaries: expensive
// deterministic artifacts (traces, instrumented timings, trained models) are
// generated once per build directory and reused by every subsequent test
// process. Artifacts are addressed by a caller-supplied key plus a config
// fingerprint, so a config change produces a new artifact instead of a stale
// hit. Generation is serialized across processes with an advisory flock;
// publication must be atomic (TraceWriter and util::atomic_write_file are),
// so a crashed generator never leaves a half-written artifact behind.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>

namespace picp::testing {

/// Cache root: $PICP_FIXTURE_DIR when set (the claims ctest tier points it
/// at <build>/picp_fixtures), else ./picp_fixtures under the working
/// directory.
std::filesystem::path fixture_root();

class FixtureCache {
 public:
  explicit FixtureCache(std::filesystem::path root = fixture_root());

  /// Return the path of the artifact for (key, fingerprint), generating it
  /// first if absent. The artifact lives at
  /// `<root>/<key>-<fingerprint as 16 hex digits><ext>`; `generate` is
  /// called with that exact path under an exclusive lock and must create
  /// the file (atomically, if crash safety matters). Every call bumps a
  /// persistent `.hits` (reused) or `.gen` (generated) sidecar counter next
  /// to the artifact.
  std::string ensure(const std::string& key, std::uint64_t fingerprint,
                     const std::string& ext,
                     const std::function<void(const std::string&)>& generate);

  /// Times `ensure` returned this artifact without regenerating it.
  static std::uint64_t hits(const std::string& artifact_path);
  /// Times this artifact was generated.
  static std::uint64_t generations(const std::string& artifact_path);

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path root_;
};

}  // namespace picp::testing
