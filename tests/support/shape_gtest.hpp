#pragma once

// GTest glue for the shape-assertion toolkit: a failing shape check prints
// its full measured-vs-claimed detail string.

#include <gtest/gtest.h>

#include "util/shape_check.hpp"

#define EXPECT_SHAPE(expr)                                \
  do {                                                    \
    const ::picp::shape::ShapeResult shape_r_ = (expr);   \
    EXPECT_TRUE(shape_r_.pass) << shape_r_.detail;        \
  } while (0)
