#include "support/fixture_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace picp::testing {

namespace fs = std::filesystem;

fs::path fixture_root() {
  if (const char* env = std::getenv("PICP_FIXTURE_DIR");
      env != nullptr && *env != '\0')
    return fs::path(env);
  return fs::current_path() / "picp_fixtures";
}

FixtureCache::FixtureCache(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// One byte appended per event; O_APPEND keeps concurrent bumps atomic, and
// the count is simply the sidecar's size, so it survives across processes.
void bump_counter(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  [[maybe_unused]] const ssize_t n = ::write(fd, "1", 1);
  ::close(fd);
}

std::uint64_t read_counter(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

class ScopedFlock {
 public:
  explicit ScopedFlock(const std::string& path)
      : fd_(::open(path.c_str(), O_RDWR | O_CREAT, 0644)) {
    PICP_REQUIRE(fd_ >= 0, "cannot open fixture lock file " + path);
    PICP_REQUIRE(::flock(fd_, LOCK_EX) == 0,
                 "cannot lock fixture lock file " + path);
  }
  ~ScopedFlock() {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
  ScopedFlock(const ScopedFlock&) = delete;
  ScopedFlock& operator=(const ScopedFlock&) = delete;

 private:
  int fd_;
};

}  // namespace

std::string FixtureCache::ensure(
    const std::string& key, std::uint64_t fingerprint, const std::string& ext,
    const std::function<void(const std::string&)>& generate) {
  const std::string artifact =
      (root_ / (key + "-" + hex16(fingerprint) + ext)).string();
  // Exclusive even on the hit path: a concurrent generator holds the lock
  // until its artifact is published, so we never observe a missing file that
  // another process is about to create.
  const ScopedFlock lock(artifact + ".lock");
  if (fs::exists(artifact)) {
    bump_counter(artifact + ".hits");
    return artifact;
  }
  generate(artifact);
  PICP_REQUIRE(fs::exists(artifact),
               "fixture generator did not produce " + artifact);
  bump_counter(artifact + ".gen");
  return artifact;
}

std::uint64_t FixtureCache::hits(const std::string& artifact_path) {
  return read_counter(artifact_path + ".hits");
}

std::uint64_t FixtureCache::generations(const std::string& artifact_path) {
  return read_counter(artifact_path + ".gen");
}

}  // namespace picp::testing
