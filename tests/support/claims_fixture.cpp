#include "support/claims_fixture.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/trainer.hpp"
#include "picsim/checkpoint.hpp"
#include "picsim/sim_driver.hpp"
#include "support/fixture_cache.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace picp::testing {

namespace fs = std::filesystem;

namespace {

// Bump to invalidate every cached claims artifact when the fixture recipe
// (not the SimConfig itself) changes.
constexpr std::uint32_t kFixtureSchema = 1;

}  // namespace

SimConfig claims_config() {
  SimConfig cfg;
  cfg.nelx = 16;
  cfg.nely = 16;
  cfg.nelz = 32;
  cfg.points_per_dim = 4;
  cfg.bed.num_particles = 4000;
  cfg.num_iterations = 2400;
  cfg.sample_every = 40;  // 60 intervals
  cfg.trace_float64 = false;
  cfg.threads = 1;
  cfg.num_ranks = 96;
  cfg.filter_size = 0.05;
  cfg.mapper_kind = "bin";
  cfg.measure = true;
  cfg.measure_every = 2;
  cfg.measure_min_seconds = 3e-5;
  cfg.measure_max_reps = 2048;
  return cfg;
}

std::vector<Rank> claims_rank_counts() { return {96, 192, 384, 768}; }

SpectralMesh claims_mesh() {
  const SimConfig cfg = claims_config();
  return SpectralMesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                      cfg.points_per_dim);
}

std::vector<double> claims_filter_sweep() {
  return {0.04, 0.05, 0.06, 0.08};
}

namespace {

std::uint64_t fixture_fingerprint(const SimConfig& cfg) {
  Crc32c crc;
  crc.update_pod(sim_config_fingerprint(cfg));
  crc.update_pod(kFixtureSchema);
  crc.update_pod(cfg.num_ranks);
  crc.update_pod(cfg.measure ? 1 : 0);
  crc.update_pod(cfg.measure_every);
  crc.update_pod(cfg.measure_min_seconds);
  crc.update_pod(cfg.measure_max_reps);
  return crc.value();
}

void atomic_write_text(const std::string& path, const std::string& text) {
  atomic_write_file(path, text.data(), text.size());
}

void publish(const std::string& tmp, const std::string& final_path) {
  fs::rename(tmp, final_path);
}

// One measured run produces the shared trace plus two sidecars: the base
// timings CSV and the recorded application wall time (wall minus the
// measurement overhead, as in bench/study.cpp). The trace file itself is
// renamed into place last, so its presence implies the sidecars exist.
void generate_trace_bundle(const std::string& trace_path) {
  const SimConfig cfg = claims_config();
  SimDriver driver(cfg);
  const std::string building = trace_path + ".building";
  const SimResult result = driver.run(building);
  const std::string timings_tmp = trace_path + ".timings.csv.tmp";
  result.timings.save_csv(timings_tmp);
  publish(timings_tmp, trace_path + ".timings.csv");
  std::ostringstream wall;
  wall << (result.wall_seconds - result.measure_seconds) << '\n';
  atomic_write_text(trace_path + ".wall", wall.str());
  publish(building, trace_path);
}

std::string generate_timings(FixtureCache& cache, Rank ranks) {
  SimConfig cfg = claims_config();
  cfg.num_ranks = ranks;
  return cache.ensure(
      "claims-timings-R" + std::to_string(ranks), fixture_fingerprint(cfg),
      ".csv", [&cfg](const std::string& path) {
        SimDriver driver(cfg);
        const SimResult result = driver.run();
        const std::string tmp = path + ".tmp";
        result.timings.save_csv(tmp);
        publish(tmp, path);
      });
}

double read_wall_seconds(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "missing claims wall sidecar " + path);
  double seconds = 0.0;
  in >> seconds;
  return seconds;
}

ClaimsFixture build_fixture() {
  FixtureCache cache;
  ClaimsFixture fixture;

  const SimConfig base = claims_config();
  fixture.trace_path = cache.ensure("claims-trace",
                                    fixture_fingerprint(base), ".trace",
                                    generate_trace_bundle);
  fixture.timings_base = fixture.trace_path + ".timings.csv";
  fixture.app_seconds = read_wall_seconds(fixture.trace_path + ".wall");

  const std::vector<Rank> ladder = claims_rank_counts();
  fixture.timings_mid = generate_timings(cache, ladder[1]);
  fixture.timings_top = generate_timings(cache, ladder[3]);

  // Models: fast deterministic linear fits on the merged base+top timings
  // (the paper trains on the extreme configurations and predicts the
  // intermediates).
  Crc32c model_crc;
  model_crc.update_pod(fixture_fingerprint(base));
  SimConfig top = base;
  top.num_ranks = ladder[3];
  model_crc.update_pod(fixture_fingerprint(top));
  const std::string timings_base_path = fixture.timings_base;
  const std::string timings_top_path = fixture.timings_top;
  fixture.models_path = cache.ensure(
      "claims-models", model_crc.value(), ".txt",
      [&timings_base_path, &timings_top_path](const std::string& path) {
        KernelTimings merged;
        for (const std::string& source :
             {timings_base_path, timings_top_path}) {
          const KernelTimings loaded = KernelTimings::load_csv(source);
          for (const TimingRecord& rec : loaded.records()) merged.add(rec);
        }
        ModelGenConfig mg;
        mg.method = FitMethod::kLinear;
        const ModelSet models = train_models(merged, mg);
        const std::string tmp = path + ".tmp";
        models.save(tmp);
        publish(tmp, path);
      });
  return fixture;
}

}  // namespace

const ClaimsFixture& claims_fixture() {
  static const ClaimsFixture fixture = build_fixture();
  return fixture;
}

std::uint64_t claims_trace_fingerprint() {
  return fixture_fingerprint(claims_config());
}

}  // namespace picp::testing
