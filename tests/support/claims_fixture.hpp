#pragma once

// The claims fixture: a miniature, fully deterministic replica of the
// paper's Hele-Shaw case study, scaled so the whole bundle (one measured
// trace run plus two extra instrumented runs and a linear model fit)
// generates in seconds on one core and reproduces every shape the claims
// tier asserts:
//
//   - relaxed bin count grows ~32 -> ~146 over the run (Fig 6), so the
//     optimal processor count lands strictly between the ladder's base (96)
//     and its second step (192);
//   - Fig 5's plateau-then-split: all ladder configurations peak
//     identically while bins < 96, then the >96 configurations dip;
//   - element mapping concentrates particles on a few ranks (Figs 1/8/9).
//
// Artifacts are shared across test binaries through the content-addressed
// FixtureCache, keyed by the simulation config fingerprint, so editing the
// config here invalidates stale fixtures instead of silently reusing them.

#include <string>
#include <vector>

#include "mesh/spectral_mesh.hpp"
#include "picsim/sim_config.hpp"

namespace picp::testing {

/// The measured base-rank configuration (R = 96) that produces the shared
/// trace, the base timings, and the recorded application wall time.
SimConfig claims_config();

/// Processor-count ladder, the fixture-scale analogue of the paper's
/// {1044, 2088, 4176, 8352}.
std::vector<Rank> claims_rank_counts();

/// Mesh matching claims_config().
SpectralMesh claims_mesh();

/// Fig 10's projection-filter sweep (claims_config().filter_size included).
std::vector<double> claims_filter_sweep();

struct ClaimsFixture {
  std::string trace_path;     // shared trace (base-rank measured run)
  double app_seconds = 0.0;   // that run's wall time minus measure overhead
  std::string timings_base;   // instrumented timings at ladder[0]
  std::string timings_mid;    // instrumented timings at ladder[1]
  std::string timings_top;    // instrumented timings at ladder[3]
  std::string models_path;    // linear models trained on base+top merged
};

/// Process-wide fixture bundle; generates anything missing from the cache
/// on first use (cross-process safe via the FixtureCache lock).
const ClaimsFixture& claims_fixture();

/// Cache fingerprint addressing the shared trace artifact — lets the
/// cache-reuse claim test re-ensure the trace and prove it hits.
std::uint64_t claims_trace_fingerprint();

}  // namespace picp::testing
