#include "core/static_baseline.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(StaticBaseline, UniformDistributionWithRemainder) {
  StaticBaselineParams params;
  params.num_ranks = 4;
  params.num_intervals = 3;
  params.num_particles = 10;
  const WorkloadResult w = static_uniform_workload(params);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(w.comp_real.interval_total(t), 10);
    EXPECT_EQ(w.comp_real.at(0, t), 3);
    EXPECT_EQ(w.comp_real.at(1, t), 3);
    EXPECT_EQ(w.comp_real.at(2, t), 2);
    EXPECT_EQ(w.comp_real.at(3, t), 2);
    EXPECT_EQ(w.comm_real.interval_volume(t), 0);  // no migration, ever
  }
}

TEST(StaticBaseline, GhostFraction) {
  StaticBaselineParams params;
  params.num_ranks = 2;
  params.num_intervals = 1;
  params.num_particles = 100;
  params.ghost_fraction = 0.1;
  const WorkloadResult w = static_uniform_workload(params);
  EXPECT_EQ(w.comp_ghost.at(0, 0), 5);
}

TEST(StaticBaseline, Validation) {
  StaticBaselineParams bad;
  EXPECT_THROW(static_uniform_workload(bad), Error);
}

TEST(CompareWorkloads, QuantifiesPeakError) {
  // Reference: one rank holds everything. Baseline: uniform.
  StaticBaselineParams params;
  params.num_ranks = 10;
  params.num_intervals = 2;
  params.num_particles = 100;
  const WorkloadResult baseline = static_uniform_workload(params);

  WorkloadResult reference = static_uniform_workload(params);
  for (std::size_t t = 0; t < 2; ++t) {
    for (Rank r = 0; r < 10; ++r) reference.comp_real.set(r, t, 0);
    reference.comp_real.set(0, t, 100);
  }
  reference.comm_real.add(0, 1, 1, 7);

  const WorkloadComparison cmp = compare_workloads(reference, baseline);
  // Baseline predicts peak 10 vs true 100: 90% error, ratio 10x.
  EXPECT_NEAR(cmp.peak_load_mape, 90.0, 1e-9);
  EXPECT_NEAR(cmp.worst_peak_ratio, 10.0, 1e-9);
  EXPECT_EQ(cmp.missed_migration, 7);
}

TEST(CompareWorkloads, IdenticalWorkloadsScoreZero) {
  StaticBaselineParams params;
  params.num_ranks = 4;
  params.num_intervals = 2;
  params.num_particles = 40;
  const WorkloadResult a = static_uniform_workload(params);
  const WorkloadResult b = static_uniform_workload(params);
  const WorkloadComparison cmp = compare_workloads(a, b);
  EXPECT_DOUBLE_EQ(cmp.peak_load_mape, 0.0);
  EXPECT_EQ(cmp.missed_migration, 0);
}

TEST(CompareWorkloads, RankMismatchThrows) {
  StaticBaselineParams a;
  a.num_ranks = 2;
  a.num_intervals = 1;
  a.num_particles = 10;
  StaticBaselineParams b = a;
  b.num_ranks = 3;
  EXPECT_THROW(compare_workloads(static_uniform_workload(a),
                                 static_uniform_workload(b)),
               Error);
}

}  // namespace
}  // namespace picp
