// Claims: the paper's motivation experiments.
//   Fig 1a — element-based mapping concentrates the particle workload on a
//            handful of processors with large idle regions.
//   Fig 1b — most processors never hold a particle, across configurations
//            (paper: ~81% idle on average at production scale).
//   §II    — generating the particle workload from the trace is far
//            cheaper than running the application.
// Thresholds are calibrated for the miniature fixture; the paper-scale
// values appear in the DESIGN.md per-experiment index.

#include <gtest/gtest.h>

#include "core/claims.hpp"
#include "support/claims_fixture.hpp"
#include "support/shape_gtest.hpp"

namespace picp::testing {
namespace {

TEST(ClaimsFig1a, ElementMappingConcentratesParticles) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();
  const Rank ranks = claims_rank_counts()[2];

  const WorkloadResult workload = claims::mapping_workload(
      mesh, fixture.trace_path, ranks, "element", cfg.filter_size);
  const claims::UtilizationClaim util =
      claims::utilization_claim(workload.comp_real);

  // A handful of hot processors...
  EXPECT_SHAPE(shape::above_threshold(
      static_cast<double>(workload.comp_real.global_max()),
      0.1 * static_cast<double>(cfg.bed.num_particles),
      "Fig 1a peak rank load (particles)"));
  // ...and large idle regions.
  EXPECT_SHAPE(shape::below_threshold(
      100.0 * util.stats.ever_active_fraction, 25.0,
      "Fig 1a ever-active processors (%)"));
}

TEST(ClaimsFig1b, MostProcessorsIdleUnderElementMapping) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();

  std::vector<double> idle_pct;
  for (const Rank ranks : claims_rank_counts()) {
    const WorkloadResult workload = claims::mapping_workload(
        mesh, fixture.trace_path, ranks, "element", cfg.filter_size);
    idle_pct.push_back(
        claims::utilization_claim(workload.comp_real).idle_pct);
  }
  double average = 0.0;
  for (const double v : idle_pct) average += v;
  average /= static_cast<double>(idle_pct.size());

  // Paper: ~81% idle on average; the fixture bed fills an even smaller
  // fraction of its mesh.
  EXPECT_SHAPE(shape::above_threshold(average, 70.0,
                                      "Fig 1b average idle processors (%)"));
  // More processors cannot reduce idleness under element mapping.
  EXPECT_SHAPE(shape::monotone_increasing(idle_pct, 0.05));
}

TEST(ClaimsGenCost, WorkloadGenerationFarCheaperThanAppRun) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const SpectralMesh mesh = claims_mesh();
  const Rank ranks = claims_rank_counts()[1];

  const double gen_seconds = claims::time_workload_generation(
      mesh, fixture.trace_path, ranks, "bin", cfg.filter_size,
      /*with_ghosts=*/false);

  // Paper: <2 min of generation vs ~24 h of application time. At fixture
  // scale the application proxy runs ~13x longer than generation; gate at
  // 3x so a uniformly loaded machine cannot flip the verdict while a
  // genuinely regressed generator still fails.
  EXPECT_SHAPE(shape::above_threshold(fixture.app_seconds / gen_seconds, 3.0,
                                      "§II app-run / workload-gen speedup"));

  // With ghosts and communication on, generation must still not exceed the
  // application proxy itself.
  const double gen_ghost_seconds = claims::time_workload_generation(
      mesh, fixture.trace_path, ranks, "bin", cfg.filter_size,
      /*with_ghosts=*/true);
  EXPECT_SHAPE(shape::below_threshold(
      gen_ghost_seconds, fixture.app_seconds,
      "§II workload gen incl. ghosts (s) vs app run (s)"));
}

}  // namespace
}  // namespace picp::testing
