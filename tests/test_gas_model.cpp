#include "picsim/gas_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace picp {
namespace {

Aabb domain() { return Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)); }

GasParams default_params() {
  GasParams p;
  p.center = Vec3(0.5, 0.5, -0.12);
  return p;
}

TEST(GasModel, AmplitudeDecaysExponentially) {
  const GasModel gas(default_params(), domain());
  const double a0 = gas.amplitude(0.0);
  EXPECT_DOUBLE_EQ(a0, default_params().gas_speed);
  EXPECT_NEAR(gas.amplitude(default_params().decay_time), a0 / M_E, 1e-12);
  EXPECT_GT(gas.amplitude(0.1), gas.amplitude(0.2));
}

TEST(GasModel, FrontFactorBehindAndAhead) {
  const GasModel gas(default_params(), domain());
  const double t = 0.2;
  const double front = default_params().front_start +
                       default_params().shock_speed * t;
  EXPECT_DOUBLE_EQ(gas.front_factor(front - 1.0, t), 1.0);
  EXPECT_DOUBLE_EQ(gas.front_factor(front + 1.0, t), 0.0);
  EXPECT_NEAR(gas.front_factor(front, t), 0.5, 1e-12);
}

TEST(GasModel, FrontFactorMonotoneInDistance) {
  const GasModel gas(default_params(), domain());
  double prev = 1.0;
  for (double d = 0.0; d < 1.0; d += 0.01) {
    const double f = gas.front_factor(d, 0.2);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

TEST(GasModel, FrontAdvancesWithTime) {
  const GasModel gas(default_params(), domain());
  const double d = 0.8;
  EXPECT_LE(gas.front_factor(d, 0.1), gas.front_factor(d, 0.5));
}

TEST(GasModel, VelocityFactorizes) {
  const GasModel gas(default_params(), domain());
  const Vec3 p(0.3, 0.7, 0.4);
  const double t = 0.15;
  const Vec3 v = gas.velocity(p, t);
  const Vec3 expected = (gas.amplitude(t) *
                         gas.front_factor(gas.front_coord(p), t)) *
                        gas.direction(p);
  EXPECT_NEAR(v.x, expected.x, 1e-15);
  EXPECT_NEAR(v.y, expected.y, 1e-15);
  EXPECT_NEAR(v.z, expected.z, 1e-15);
}

TEST(GasModel, DirectionPointsAwayFromCenter) {
  const GasModel gas(default_params(), domain());
  for (const Vec3 p : {Vec3(0.2, 0.5, 0.1), Vec3(0.8, 0.8, 1.0),
                       Vec3(0.5, 0.1, 0.3)}) {
    const Vec3 rel = p - default_params().center;
    const Vec3 dir = gas.direction(p);
    EXPECT_GT(dir.dot(rel), 0.0) << "at " << p;
  }
}

TEST(GasModel, DirectionAtCenterIsPureLift) {
  const GasModel gas(default_params(), domain());
  const Vec3 dir = gas.direction(default_params().center);
  EXPECT_DOUBLE_EQ(dir.x, 0.0);
  EXPECT_DOUBLE_EQ(dir.y, 0.0);
  EXPECT_DOUBLE_EQ(dir.z, default_params().lift);
}

TEST(GasModel, ExpansionGrowsWithDistance) {
  // The expansion fan is self-similar: the radial component scales with the
  // distance from the blast center.
  GasParams p = default_params();
  p.jet_amplitude = 0.0;
  p.lift = 0.0;
  const GasModel gas(p, domain());
  const Vec3 near = gas.direction(p.center + Vec3(0.1, 0.0, 0.1));
  const Vec3 far = gas.direction(p.center + Vec3(0.2, 0.0, 0.2));
  EXPECT_NEAR(far.norm(), 2.0 * near.norm(), 1e-12);
}

TEST(GasModel, JetLobesModulateSpeed) {
  GasParams p = default_params();
  p.jet_amplitude = 0.5;
  p.jet_count = 4;
  const GasModel gas(p, domain());
  // Same distance from the axis, different azimuth: lobe pattern changes
  // the magnitude.
  const double r = 0.2;
  double min_mag = 1e9, max_mag = 0.0;
  for (int k = 0; k < 16; ++k) {
    const double theta = 2.0 * M_PI * k / 16.0;
    const Vec3 q(p.center.x + r * std::cos(theta),
                 p.center.y + r * std::sin(theta), 0.5);
    const double mag = gas.direction(q).norm();
    min_mag = std::min(min_mag, mag);
    max_mag = std::max(max_mag, mag);
  }
  EXPECT_GT(max_mag, min_mag * 1.2);
}

TEST(GasModel, ZeroJetAmplitudeIsAxisymmetric) {
  GasParams p = default_params();
  p.jet_amplitude = 0.0;
  const GasModel gas(p, domain());
  // Without lobes the field is rotationally symmetric about the axis.
  const double a = gas.direction(p.center + Vec3(0.2, 0.0, 0.4)).norm();
  const double b = gas.direction(p.center + Vec3(0.0, 0.2, 0.4)).norm();
  const double c = gas.direction(p.center + Vec3(0.1414213562373095,
                                                 0.1414213562373095, 0.4))
                       .norm();
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_NEAR(a, c, 1e-12);
}

TEST(GasModel, VelocityZeroAheadOfFront) {
  const GasModel gas(default_params(), domain());
  // At t=0 the front is at the center; far points see no gas yet.
  const Vec3 v = gas.velocity(Vec3(0.5, 0.5, 1.9), 0.0);
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(GasModel, RejectsBadParams) {
  GasParams p = default_params();
  p.decay_time = 0.0;
  EXPECT_THROW(GasModel(p, domain()), Error);
  p = default_params();
  p.jet_amplitude = 1.5;
  EXPECT_THROW(GasModel(p, domain()), Error);
  p = default_params();
  p.shock_speed = -1.0;
  EXPECT_THROW(GasModel(p, domain()), Error);
}

}  // namespace
}  // namespace picp
