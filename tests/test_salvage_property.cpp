// Property/fuzz pass on the trace salvage path: for randomized corruptions
// (byte flips, truncations, garbage tails, and combinations) of a sealed v2
// trace, the scanner and the salvage reader must
//   - never crash (any failure is a typed picp::Error),
//   - never report more samples than the file ever held,
//   - return a valid prefix: every salvaged sample byte-equals the original,
//   - repair into a sealed, strict-readable trace holding exactly that
//     prefix.
// Mutations are drawn from a fixed-seed Xoshiro256, so every run replays
// the same 64 corruption cases.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_reader.hpp"
#include "trace/trace_salvage.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

constexpr std::size_t kNp = 6;
constexpr std::size_t kSamples = 5;

std::string write_clean_trace(const std::string& path) {
  TraceWriter writer(path, kNp, 10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     CoordKind::kFloat64);
  Xoshiro256 rng(42);
  std::vector<Vec3> pos(kNp);
  for (std::size_t s = 0; s < kSamples; ++s) {
    for (auto& p : pos)
      p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    writer.append(s * 10, pos);
  }
  writer.close();
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_same_sample(const TraceSample& got, const TraceSample& want,
                        std::size_t index, int trial) {
  ASSERT_EQ(got.iteration, want.iteration)
      << "sample " << index << ", trial " << trial;
  ASSERT_EQ(got.positions.size(), want.positions.size())
      << "sample " << index << ", trial " << trial;
  for (std::size_t p = 0; p < got.positions.size(); ++p) {
    ASSERT_EQ(got.positions[p].x, want.positions[p].x) << "trial " << trial;
    ASSERT_EQ(got.positions[p].y, want.positions[p].y) << "trial " << trial;
    ASSERT_EQ(got.positions[p].z, want.positions[p].z) << "trial " << trial;
  }
}

TEST(SalvageProperty, RandomCorruptionSweepNeverCrashesAndKeepsValidPrefix) {
  const std::string clean_path =
      write_clean_trace(testing::TempDir() + "/salvage_prop_clean.bin");
  const std::string clean = slurp(clean_path);
  const std::vector<TraceSample> original = read_full_trace(clean_path);
  ASSERT_EQ(original.size(), kSamples);

  const std::string damaged_path =
      testing::TempDir() + "/salvage_prop_damaged.bin";
  const std::string repaired_path =
      testing::TempDir() + "/salvage_prop_repaired.bin";

  Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 64; ++trial) {
    std::string mutated = clean;

    // Compose one to three corruption actions per trial.
    const std::size_t actions = 1 + rng.uniform_below(3);
    for (std::size_t a = 0; a < actions; ++a) {
      switch (rng.uniform_below(3)) {
        case 0: {  // flip 1..8 random bytes with non-zero masks
          const std::size_t flips = 1 + rng.uniform_below(8);
          for (std::size_t f = 0; f < flips && !mutated.empty(); ++f) {
            const std::size_t pos = rng.uniform_below(mutated.size());
            const char mask =
                static_cast<char>(1 + rng.uniform_below(255));
            mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
          }
          break;
        }
        case 1: {  // truncate anywhere, including inside the header
          if (!mutated.empty())
            mutated.resize(rng.uniform_below(mutated.size()));
          break;
        }
        case 2: {  // append a garbage tail (an interrupted rewrite)
          const std::size_t tail = 1 + rng.uniform_below(200);
          for (std::size_t t = 0; t < tail; ++t)
            mutated.push_back(
                static_cast<char>(rng.uniform_below(256)));
          break;
        }
      }
    }
    spit(damaged_path, mutated);

    // The scan either reports (bounded) recoverable samples or throws a
    // typed Error for an unreadable header. Anything else — a crash, an
    // untyped exception — fails the test harness itself.
    std::uint64_t recoverable = 0;
    bool scan_ok = false;
    try {
      const SalvageReport report = scan_trace(damaged_path);
      recoverable = report.valid_samples;
      scan_ok = true;
      EXPECT_LE(report.valid_samples, kSamples) << "trial " << trial;
      EXPECT_LE(report.valid_bytes, report.file_bytes) << "trial " << trial;
    } catch (const Error&) {
      // Unreadable header: nothing recoverable, and that is a valid answer.
    }

    // The salvage reader agrees with the scan and serves only the valid
    // prefix, byte-identical to the original samples.
    try {
      TraceReader reader(damaged_path, TraceReadMode::kSalvage);
      ASSERT_TRUE(scan_ok) << "reader opened what the scanner rejected, "
                           << "trial " << trial;
      EXPECT_EQ(reader.num_samples(), recoverable) << "trial " << trial;
      TraceSample sample;
      std::size_t read = 0;
      while (reader.read_next(sample)) {
        ASSERT_LT(read, original.size()) << "trial " << trial;
        expect_same_sample(sample, original[read], read, trial);
        ++read;
      }
      EXPECT_EQ(read, recoverable) << "trial " << trial;
    } catch (const Error&) {
      EXPECT_FALSE(scan_ok)
          << "salvage open threw although the scan succeeded, trial "
          << trial;
    }

    // Repair round-trip: a recoverable prefix becomes a sealed v2 trace
    // that strict mode accepts and that holds exactly the prefix.
    if (scan_ok && recoverable > 0) {
      const SalvageReport report = repair_trace(damaged_path, repaired_path);
      EXPECT_EQ(report.valid_samples, recoverable) << "trial " << trial;
      EXPECT_TRUE(scan_trace(repaired_path).intact()) << "trial " << trial;
      TraceReader reader(repaired_path);  // strict mode
      EXPECT_EQ(reader.num_samples(), recoverable) << "trial " << trial;
      TraceSample sample;
      std::size_t read = 0;
      while (reader.read_next(sample)) {
        expect_same_sample(sample, original[read], read, trial);
        ++read;
      }
      EXPECT_EQ(read, recoverable) << "trial " << trial;
      std::remove(repaired_path.c_str());
    }
    std::remove(damaged_path.c_str());
  }
  std::remove(clean_path.c_str());
}

}  // namespace
}  // namespace picp
