#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.size(), 1u);
}

TEST(ThreadPool, NullTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 10000);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThrowingTaskPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait_idle(), Error);
}

TEST(ThreadPool, ThrowingTaskPropagatesFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(10000,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw Error("chunk failed");
                        }),
      Error);
}

TEST(ThreadPool, PoolUsableAfterTaskThrows) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("first batch"); });
  EXPECT_THROW(pool.wait_idle(), Error);
  // The error must not poison later batches.
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, RemainingTasksRunAfterOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter, i] {
      if (i == 3) throw Error("one bad task");
      ++counter;
    });
  EXPECT_THROW(pool.wait_idle(), Error);
  EXPECT_EQ(counter.load(), 99);
}

TEST(ThreadPool, GrainKeepsSmallRangesInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  const auto tid = std::this_thread::get_id();
  std::atomic<bool> same_thread{true};
  pool.parallel_for(100, /*grain=*/200,
                    [&](std::size_t begin, std::size_t end) {
                      ++calls;
                      if (std::this_thread::get_id() != tid)
                        same_thread = false;
                      EXPECT_EQ(begin, 0u);
                      EXPECT_EQ(end, 100u);
                    });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(same_thread.load());
}

TEST(ThreadPool, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(1000, /*grain=*/400,
                    [&](std::size_t begin, std::size_t end) {
                      std::lock_guard<std::mutex> lock(mu);
                      chunks.emplace_back(begin, end);
                    });
  // 1000 / 400 = 2 chunks at most, each at least the grain size.
  EXPECT_LE(chunks.size(), 2u);
  std::size_t covered = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_GE(end - begin, 400u);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 1000u);
}

}  // namespace
}  // namespace picp
