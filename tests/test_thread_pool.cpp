#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.size(), 1u);
}

TEST(ThreadPool, NullTaskThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> touched(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
      total += static_cast<long>(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 10000);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace picp
