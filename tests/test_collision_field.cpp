#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "picsim/collision_grid.hpp"
#include "picsim/field_cache.hpp"
#include "picsim/particle_store.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace picp {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  return out;
}

TEST(CollisionGrid, FindsSameNeighborsAsBruteForce) {
  const auto cloud = random_cloud(400, 1);
  const double cutoff = 0.08;
  CollisionGrid grid(cutoff);
  grid.rebuild(cloud);
  for (std::size_t i = 0; i < cloud.size(); i += 13) {
    std::set<std::size_t> from_grid;
    grid.visit_neighbors(i, cutoff, 1000,
                         [&](std::size_t j, const Vec3&, double) {
                           from_grid.insert(j);
                         });
    std::set<std::size_t> brute;
    for (std::size_t j = 0; j < cloud.size(); ++j) {
      if (j == i) continue;
      if ((cloud[i] - cloud[j]).norm2() < cutoff * cutoff) brute.insert(j);
    }
    EXPECT_EQ(from_grid, brute) << "particle " << i;
  }
}

TEST(CollisionGrid, NeighborCapRespected) {
  // A tight cluster: every particle sees every other.
  std::vector<Vec3> cloud(50, Vec3(0.5, 0.5, 0.5));
  Xoshiro256 rng(2);
  for (auto& p : cloud)
    p += Vec3(rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01),
              rng.uniform(-0.01, 0.01));
  CollisionGrid grid(0.05);
  grid.rebuild(cloud);
  const int visited = grid.visit_neighbors(
      0, 0.05, 8, [](std::size_t, const Vec3&, double) {});
  EXPECT_EQ(visited, 8);
}

TEST(CollisionGrid, DeltaAndDistanceArguments) {
  const std::vector<Vec3> cloud = {Vec3(0.5, 0.5, 0.5),
                                   Vec3(0.53, 0.5, 0.5)};
  CollisionGrid grid(0.1);
  grid.rebuild(cloud);
  int count = 0;
  grid.visit_neighbors(0, 0.1, 10,
                       [&](std::size_t j, const Vec3& delta, double d2) {
                         EXPECT_EQ(j, 1u);
                         EXPECT_NEAR(delta.x, -0.03, 1e-12);
                         EXPECT_NEAR(d2, 0.0009, 1e-12);
                         ++count;
                       });
  EXPECT_EQ(count, 1);
}

TEST(CollisionGrid, SelfExcluded) {
  const std::vector<Vec3> cloud = {Vec3(0.5, 0.5, 0.5)};
  CollisionGrid grid(0.1);
  grid.rebuild(cloud);
  const int visited = grid.visit_neighbors(
      0, 0.1, 10, [](std::size_t, const Vec3&, double) {});
  EXPECT_EQ(visited, 0);
}

TEST(CollisionGrid, ParallelRebuildBitIdenticalToSerial) {
  // Enough particles to cross the parallel-build threshold; odd count so
  // chunk boundaries don't align with anything.
  const auto cloud = random_cloud(8191, 3);
  const double cutoff = 0.03;
  CollisionGrid serial(cutoff);
  serial.rebuild(cloud);
  ThreadPool pool(4);
  CollisionGrid parallel(cutoff);
  parallel.rebuild(cloud, &pool);
  ASSERT_EQ(serial.cell_count(), parallel.cell_count());
  // The neighbor *sequence* (not just the set) must match: the parallel
  // counting sort promises the identical stable cell order.
  for (std::size_t i = 0; i < cloud.size(); i += 97) {
    std::vector<std::size_t> a, b;
    serial.visit_neighbors(i, cutoff, 1000,
                           [&](std::size_t j, const Vec3&, double) {
                             a.push_back(j);
                           });
    parallel.visit_neighbors(i, cutoff, 1000,
                             [&](std::size_t j, const Vec3&, double) {
                               b.push_back(j);
                             });
    EXPECT_EQ(a, b) << "particle " << i;
  }
}

TEST(ParticleStoreTest, BedInitializationDeterministic) {
  const Aabb domain(Vec3(0, 0, 0), Vec3(1, 1, 2));
  BedParams params;
  params.num_particles = 1000;
  ParticleStore a, b;
  init_hele_shaw_bed(a, domain, params);
  init_hele_shaw_bed(b, domain, params);
  ASSERT_EQ(a.size(), 1000u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.position(i), b.position(i));
}

TEST(ParticleStoreTest, BedInsideConfiguredRegion) {
  const Aabb domain(Vec3(0, 0, 0), Vec3(1, 1, 2));
  BedParams params;
  params.num_particles = 2000;
  params.bed_bottom = 0.1;
  params.bed_height = 0.2;
  params.radius_fraction = 0.5;
  ParticleStore store;
  init_hele_shaw_bed(store, domain, params);
  const double radius = 0.5 * 0.5;  // fraction * half-extent
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Vec3& p = store.position(i);
    EXPECT_GE(p.z, 0.1);
    EXPECT_LE(p.z, 0.3 + 1e-12);
    const double dx = p.x - 0.5, dy = p.y - 0.5;
    EXPECT_LE(std::sqrt(dx * dx + dy * dy), radius + 1e-12);
    EXPECT_EQ(store.velocity(i), Vec3());
  }
}

TEST(ParticleStoreTest, BoundsAreTight) {
  ParticleStore store;
  store.resize(2);
  store.positions()[0] = Vec3(0.1, 0.2, 0.3);
  store.positions()[1] = Vec3(0.9, 0.1, 0.8);
  const Aabb b = store.bounds();
  EXPECT_EQ(b.lo, Vec3(0.1, 0.1, 0.3));
  EXPECT_EQ(b.hi, Vec3(0.9, 0.2, 0.8));
}

TEST(FieldCacheTest, InterpolationMatchesDirectEvaluationAtCorners) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 4, 4, 4, 3);
  GasParams params;
  params.center = Vec3(0.5, 0.5, -0.2);
  const GasModel gas(params, mesh.domain());
  FieldCache cache(mesh, gas);
  const double t = 0.3;
  // At an element corner the trilinear weights collapse to that corner, so
  // the cache must reproduce the analytic field exactly.
  const Vec3 corner(0.25, 0.5, 0.75);
  const Vec3 cached = cache.interpolate(corner, t);
  const Vec3 direct = gas.velocity(corner, t);
  EXPECT_NEAR(cached.x, direct.x, 1e-12);
  EXPECT_NEAR(cached.y, direct.y, 1e-12);
  EXPECT_NEAR(cached.z, direct.z, 1e-12);
}

TEST(FieldCacheTest, InterpolationCloseToFieldInsideElements) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 8, 8, 8, 3);
  GasParams params;
  params.center = Vec3(0.5, 0.5, -0.2);
  const GasModel gas(params, mesh.domain());
  FieldCache cache(mesh, gas);
  Xoshiro256 rng(5);
  // Evaluate after the blast front has swept the whole domain: within the
  // front ramp (thinner than an element) trilinear interpolation smears the
  // discontinuity by design, so accuracy is only meaningful behind it.
  const double t = 1.0;
  for (int i = 0; i < 200; ++i) {
    const Vec3 p(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    const Vec3 cached = cache.interpolate(p, t);
    const Vec3 direct = gas.velocity(p, t);
    // Trilinear interpolation over an h=1/8 element of a smooth field; the
    // azimuthal lobe pattern turns fastest near the blast axis, so allow a
    // magnitude-relative slack.
    const double tol = 0.02 + 0.08 * direct.norm();
    EXPECT_NEAR(cached.x, direct.x, tol);
    EXPECT_NEAR(cached.y, direct.y, tol);
    EXPECT_NEAR(cached.z, direct.z, tol);
  }
}

TEST(FieldCacheTest, DenseTableCoversEveryElementAtConstruction) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 4, 4, 4, 3);
  GasParams params;
  const GasModel gas(params, mesh.domain());
  const FieldCache cache(mesh, gas);
  // Eager dense build: the whole mesh is tabulated up front, so the
  // interpolation hot path is a const read (safe to share across threads).
  EXPECT_EQ(cache.cached_elements(),
            static_cast<std::size_t>(mesh.num_elements()));
  for (const ElementId e : {ElementId{0}, ElementId{31},
                            mesh.num_elements() - 1}) {
    const auto& field = cache.element_field(e);
    const Aabb expected = mesh.element_bounds(e);
    EXPECT_EQ(field.bounds.lo, expected.lo);
    EXPECT_EQ(field.bounds.hi, expected.hi);
  }
}

TEST(FieldCacheTest, AdjacentElementsShareCornerValues) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 4, 4, 4, 3);
  GasParams params;
  params.center = Vec3(0.5, 0.5, -0.2);
  const GasModel gas(params, mesh.domain());
  const FieldCache cache(mesh, gas);
  // Corner 1 (+x) of element (0,0,0) is corner 0 (-x) of element (1,0,0):
  // both gather from the same lattice point, so the values are bitwise
  // equal — adjacent elements can never disagree about a shared corner.
  const auto& left = cache.element_field(mesh.element_at(0, 0, 0));
  const auto& right = cache.element_field(mesh.element_at(1, 0, 0));
  EXPECT_EQ(left.corner_dir[1], right.corner_dir[0]);
  EXPECT_EQ(left.corner_d[1], right.corner_d[0]);
}

}  // namespace
}  // namespace picp
