#include "bsst/event_queue.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

Event make_event(SimTime time, ComponentId dst = 0) {
  Event e;
  e.time = time;
  e.dst = dst;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(make_event(3.0));
  q.push(make_event(1.0));
  q.push(make_event(2.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  for (ComponentId id = 0; id < 10; ++id) q.push(make_event(5.0, id));
  for (ComponentId id = 0; id < 10; ++id) EXPECT_EQ(q.pop().dst, id);
}

TEST(EventQueue, SizeAndPeek) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(make_event(2.0));
  q.push(make_event(1.0));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.peek().time, 1.0);
  EXPECT_EQ(q.size(), 2u);  // peek does not remove
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), Error);
}

TEST(EventQueue, RandomStressStaysSorted) {
  EventQueue q;
  Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) q.push(make_event(rng.uniform(0, 100)));
  SimTime prev = -1.0;
  while (!q.empty()) {
    const SimTime t = q.pop().time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(make_event(10.0));
  q.push(make_event(5.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  q.push(make_event(1.0));
  q.push(make_event(20.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 20.0);
}

}  // namespace
}  // namespace picp
