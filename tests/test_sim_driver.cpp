#include "picsim/sim_driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "picsim/checkpoint.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_salvage.hpp"
#include "util/error.hpp"

namespace picp {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 500;
  cfg.num_iterations = 200;
  cfg.sample_every = 50;
  cfg.num_ranks = 16;
  cfg.filter_size = 0.08;
  cfg.measure = false;
  return cfg;
}

TEST(SimDriver, ProducesExpectedSampleCount) {
  const std::string path = testing::TempDir() + "/picp_sim_trace.bin";
  SimDriver driver(tiny_config());
  const SimResult result = driver.run(path);
  EXPECT_EQ(result.trace_samples, 4u);  // iterations 0, 50, 100, 150
  EXPECT_EQ(result.actual.num_intervals(), 4u);
  TraceReader reader(path);
  EXPECT_EQ(reader.num_samples(), 4u);
  EXPECT_EQ(reader.num_particles(), 500u);
  std::remove(path.c_str());
}

TEST(SimDriver, ActualWorkloadConservesParticles) {
  SimDriver driver(tiny_config());
  const SimResult result = driver.run();
  for (std::size_t t = 0; t < result.actual.num_intervals(); ++t)
    EXPECT_EQ(result.actual.comp_real.interval_total(t), 500);
}

TEST(SimDriver, ParticlesMoveDuringRun) {
  const std::string path = testing::TempDir() + "/picp_sim_move.bin";
  SimConfig cfg = tiny_config();
  cfg.num_iterations = 3000;
  cfg.sample_every = 1500;
  SimDriver driver(cfg);
  driver.run(path);
  const auto samples = read_full_trace(path);
  ASSERT_EQ(samples.size(), 2u);
  // The blast must displace the bed's center of mass upward.
  const auto mean_z = [](const TraceSample& s) {
    double z = 0.0;
    for (const Vec3& p : s.positions) z += p.z;
    return z / static_cast<double>(s.positions.size());
  };
  EXPECT_GT(mean_z(samples[1]), mean_z(samples[0]) + 1e-3);
  std::remove(path.c_str());
}

TEST(SimDriver, DeterministicForSeed) {
  const std::string path_a = testing::TempDir() + "/picp_sim_a.bin";
  const std::string path_b = testing::TempDir() + "/picp_sim_b.bin";
  SimDriver(tiny_config()).run(path_a);
  SimDriver(tiny_config()).run(path_b);
  const auto a = read_full_trace(path_a);
  const auto b = read_full_trace(path_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s)
    for (std::size_t i = 0; i < a[s].positions.size(); ++i)
      EXPECT_EQ(a[s].positions[i], b[s].positions[i]) << s << ":" << i;
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(SimDriver, ThreadCountInvariant) {
  // A scaled-down hele_shaw_small: enough particles to cross the driver's
  // parallel-build thresholds, collisions on so the threaded grid rebuild
  // runs every iteration, measurement on so the parallel rank/ghost builds
  // run too. Every output must be bit-identical across thread counts.
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 6000;
  cfg.num_iterations = 120;
  cfg.sample_every = 40;
  cfg.num_ranks = 16;
  cfg.filter_size = 0.08;
  cfg.physics.collision_radius = 0.01;
  cfg.measure = true;
  cfg.measure_min_seconds = 1e-6;
  cfg.measure_max_reps = 2;

  const std::string path_1 = testing::TempDir() + "/picp_sim_t1.bin";
  const std::string path_4 = testing::TempDir() + "/picp_sim_t4.bin";
  cfg.threads = 1;
  SimDriver serial(cfg);
  ASSERT_EQ(serial.threads(), 1u);
  const SimResult a = serial.run(path_1);
  cfg.threads = 4;
  SimDriver threaded(cfg);
  ASSERT_EQ(threaded.threads(), 4u);
  const SimResult b = threaded.run(path_4);

  // Final particle state: bitwise equal positions and velocities.
  ASSERT_EQ(a.final_positions.size(), b.final_positions.size());
  for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
    EXPECT_EQ(a.final_positions[i], b.final_positions[i]) << i;
    EXPECT_EQ(a.final_velocities[i], b.final_velocities[i]) << i;
  }
  // The traces must be byte-for-byte identical files.
  EXPECT_EQ(file_bytes(path_1), file_bytes(path_4));
  // In-situ workload accounting agrees interval by interval.
  ASSERT_EQ(a.actual.num_intervals(), b.actual.num_intervals());
  for (std::size_t t = 0; t < a.actual.num_intervals(); ++t) {
    EXPECT_EQ(a.actual.comp_real.interval_total(t),
              b.actual.comp_real.interval_total(t));
    EXPECT_EQ(a.actual.comp_ghost.interval_total(t),
              b.actual.comp_ghost.interval_total(t));
  }
  // Measurement visited the same (kernel, rank, interval) workloads.
  ASSERT_EQ(a.timings.size(), b.timings.size());
  for (std::size_t k = 0; k < a.timings.size(); ++k) {
    const TimingRecord& ra = a.timings.records()[k];
    const TimingRecord& rb = b.timings.records()[k];
    EXPECT_EQ(ra.rank, rb.rank);
    EXPECT_EQ(ra.kernel, rb.kernel);
    EXPECT_EQ(ra.interval, rb.interval);
    EXPECT_EQ(ra.np, rb.np);
    EXPECT_EQ(ra.ngp, rb.ngp);
    EXPECT_EQ(ra.nmove, rb.nmove);
  }
  std::remove(path_1.c_str());
  std::remove(path_4.c_str());
}

TEST(SimDriver, ThreadsZeroSelectsHardwareConcurrency) {
  SimConfig cfg = tiny_config();
  cfg.threads = 0;
  SimDriver driver(cfg);
  EXPECT_GE(driver.threads(), 1u);
  const SimResult result = driver.run();
  EXPECT_EQ(result.actual.num_intervals(), 4u);
}

TEST(SimDriver, MeasurementProducesRecordsForActiveRanks) {
  SimConfig cfg = tiny_config();
  cfg.measure = true;
  cfg.measure_min_seconds = 1e-6;  // keep the test fast
  cfg.measure_max_reps = 4;
  SimDriver driver(cfg);
  const SimResult result = driver.run();
  EXPECT_FALSE(result.timings.empty());
  EXPECT_GT(result.measure_seconds, 0.0);
  // Every record's np matches the actual computation matrix.
  for (const TimingRecord& rec : result.timings.records()) {
    EXPECT_GE(rec.seconds, 0.0);
    EXPECT_EQ(static_cast<std::int64_t>(rec.np),
              result.actual.comp_real.at(rec.rank, rec.interval));
    EXPECT_EQ(rec.filter, cfg.filter_size);
  }
  // All kernels appear (fluid is measured once, at the first interval).
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_FALSE(result.timings.for_kernel(static_cast<Kernel>(k)).empty())
        << kernel_name(static_cast<Kernel>(k));
  for (const TimingRecord& rec : result.timings.for_kernel(Kernel::kFluid)) {
    EXPECT_EQ(rec.interval, 0u);
    EXPECT_GT(rec.nel, 0.0);
  }
}

TEST(SimDriver, MeasureEverySkipsIntervals) {
  SimConfig cfg = tiny_config();
  cfg.measure = true;
  cfg.measure_every = 2;
  cfg.measure_min_seconds = 1e-6;
  cfg.measure_max_reps = 2;
  SimDriver driver(cfg);
  const SimResult result = driver.run();
  for (const TimingRecord& rec : result.timings.records())
    EXPECT_EQ(rec.interval % 2, 0u);
  EXPECT_FALSE(result.timings.for_kernel(Kernel::kFluid).empty());
}

TEST(SimDriver, CollisionsEnabledStillConserves) {
  SimConfig cfg = tiny_config();
  cfg.physics.collision_radius = 0.01;
  SimDriver driver(cfg);
  const SimResult result = driver.run();
  for (std::size_t t = 0; t < result.actual.num_intervals(); ++t)
    EXPECT_EQ(result.actual.comp_real.interval_total(t), 500);
}

TEST(SimDriver, ElementMapperRunWorks) {
  SimConfig cfg = tiny_config();
  cfg.mapper_kind = "element";
  SimDriver driver(cfg);
  const SimResult result = driver.run();
  // Element mapping leaves partitions at the rank count.
  for (const std::int64_t p : result.actual.partitions_per_interval)
    EXPECT_EQ(p, 16);
}

TEST(SimDriver, BinPartitionsBoundedByRanks) {
  SimDriver driver(tiny_config());
  const SimResult result = driver.run();
  for (const std::int64_t p : result.actual.partitions_per_interval) {
    EXPECT_GE(p, 1);
    EXPECT_LE(p, 16);
  }
}

TEST(SimDriver, CheckpointResumeProducesBitIdenticalTrace) {
  // Kill-resilience drill: run A straight through; run B is "killed" after
  // 110 iterations (last checkpoint at 90) and resumed. The resumed trace
  // must match A byte for byte, including the sealed footer digest.
  SimConfig cfg = tiny_config();
  cfg.checkpoint_every = 30;

  const std::string full_path = testing::TempDir() + "/picp_ck_full.bin";
  SimDriver(cfg).run(full_path);

  const std::string path = testing::TempDir() + "/picp_ck_resume.bin";
  RunOptions crash;
  crash.abort_after_iterations = 110;
  const SimResult killed = SimDriver(cfg).run(path, crash);
  EXPECT_TRUE(killed.aborted);
  // The crash left the unsealed partial plus a checkpoint at iteration 90
  // with samples 0, 50 (iteration 100's sample is in the .part but after
  // the checkpointed offset — resume truncates it away and rewrites it).
  EXPECT_FALSE(std::ifstream(path).is_open());
  const SimCheckpoint ckpt = SimCheckpoint::load(path + ".ckpt");
  EXPECT_EQ(ckpt.next_iteration, 90);
  EXPECT_EQ(ckpt.trace_samples, 2u);
  const SalvageReport partial = scan_trace(path + ".part");
  EXPECT_EQ(partial.valid_samples, 3u);  // samples 0, 50, 100 all complete
  EXPECT_FALSE(partial.sealed);

  RunOptions resume;
  resume.resume = true;
  const SimResult resumed = SimDriver(cfg).run(path, resume);
  EXPECT_EQ(resumed.start_iteration, 90);
  EXPECT_FALSE(resumed.aborted);
  EXPECT_EQ(resumed.trace_samples, 4u);

  EXPECT_EQ(file_bytes(path), file_bytes(full_path));
  EXPECT_TRUE(scan_trace(path).intact());
  // Success removes the checkpoint; the .part was renamed over the final.
  EXPECT_FALSE(std::ifstream(path + ".ckpt").is_open());
  EXPECT_FALSE(std::ifstream(path + ".part").is_open());
  std::remove(full_path.c_str());
  std::remove(path.c_str());
}

TEST(SimDriver, ResumeWithDifferentThreadCountStillBitIdentical) {
  SimConfig cfg = tiny_config();
  cfg.checkpoint_every = 50;

  const std::string full_path = testing::TempDir() + "/picp_ck_tfull.bin";
  SimDriver(cfg).run(full_path);

  const std::string path = testing::TempDir() + "/picp_ck_tmix.bin";
  RunOptions crash;
  crash.abort_after_iterations = 100;
  SimDriver(cfg).run(path, crash);
  // Threads are excluded from the config fingerprint (outputs are
  // bit-identical by design), so resuming threaded is legal.
  cfg.threads = 4;
  RunOptions resume;
  resume.resume = true;
  const SimResult resumed = SimDriver(cfg).run(path, resume);
  EXPECT_EQ(resumed.start_iteration, 100);
  EXPECT_EQ(file_bytes(path), file_bytes(full_path));
  std::remove(full_path.c_str());
  std::remove(path.c_str());
}

TEST(SimDriver, ResumeRejectsConfigMismatch) {
  SimConfig cfg = tiny_config();
  cfg.checkpoint_every = 50;
  const std::string path = testing::TempDir() + "/picp_ck_bad.bin";
  RunOptions crash;
  crash.abort_after_iterations = 100;
  SimDriver(cfg).run(path, crash);

  SimConfig other = cfg;
  other.physics.dt *= 2.0;  // trajectory-shaping change
  RunOptions resume;
  resume.resume = true;
  EXPECT_THROW(SimDriver(other).run(path, resume), CorruptInputError);
  std::remove((path + ".part").c_str());
  std::remove((path + ".ckpt").c_str());
}

TEST(SimDriver, ResumeWithoutCheckpointThrows) {
  SimConfig cfg = tiny_config();
  RunOptions resume;
  resume.resume = true;
  EXPECT_THROW(
      SimDriver(cfg).run(testing::TempDir() + "/picp_ck_none.bin", resume),
      Error);
}

TEST(SimDriver, ConfigFingerprintIgnoresNonTrajectoryKnobs) {
  const SimConfig base = tiny_config();
  SimConfig changed = base;
  changed.threads = 8;
  changed.measure = true;
  changed.mapper_kind = "element";
  changed.num_ranks = 4;
  EXPECT_EQ(sim_config_fingerprint(base), sim_config_fingerprint(changed));
  changed = base;
  changed.bed.seed += 1;
  EXPECT_NE(sim_config_fingerprint(base), sim_config_fingerprint(changed));
  changed = base;
  changed.sample_every = 25;
  EXPECT_NE(sim_config_fingerprint(base), sim_config_fingerprint(changed));
}

TEST(SimConfigTest, ValidateRejectsBadValues) {
  SimConfig cfg = tiny_config();
  cfg.sample_every = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = tiny_config();
  cfg.filter_size = -1.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = tiny_config();
  cfg.num_ranks = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(SimConfigTest, FromConfigAppliesOverrides) {
  const auto ini = Config::from_string(
      "[mesh]\nnelx = 4\nnely = 4\nnelz = 8\n"
      "[bed]\nnum_particles = 123\n"
      "[run]\nnum_iterations = 10\nsample_every = 5\nthreads = 3\n"
      "[mapping]\nmapper = element\nnum_ranks = 3\nfilter_size = 0.07\n"
      "[measure]\nenabled = false\n");
  const SimConfig cfg = SimConfig::from_config(ini);
  EXPECT_EQ(cfg.nelx, 4);
  EXPECT_EQ(cfg.bed.num_particles, 123u);
  EXPECT_EQ(cfg.num_iterations, 10);
  EXPECT_EQ(cfg.threads, 3u);
  EXPECT_EQ(cfg.mapper_kind, "element");
  EXPECT_EQ(cfg.num_ranks, 3);
  EXPECT_DOUBLE_EQ(cfg.filter_size, 0.07);
  EXPECT_EQ(cfg.num_samples(), 2);
}

}  // namespace
}  // namespace picp
