#include "bsst/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace picp {
namespace {

/// Records every event it receives; optionally re-schedules.
class Recorder final : public Component {
 public:
  Recorder(ComponentId id, std::vector<std::pair<SimTime, std::int64_t>>& log)
      : Component(id, "recorder"), log_(&log) {}

  void handle(Engine& engine, const Event& event) override {
    log_->push_back({engine.now(), event.a});
    if (event.kind == 1 && event.a > 0)  // countdown chain
      engine.schedule(id(), id(), 1.0, 1, event.a - 1);
  }

 private:
  std::vector<std::pair<SimTime, std::int64_t>>* log_;
};

TEST(EngineTest, DispatchesInOrderAndAdvancesClock) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  engine.add_component(std::make_unique<Recorder>(0, log));
  engine.schedule(-1, 0, 5.0, 0, 1);
  engine.schedule(-1, 0, 2.0, 0, 2);
  engine.schedule(-1, 0, 8.0, 0, 3);
  EXPECT_EQ(engine.run(), 3u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0].first, 2.0);
  EXPECT_EQ(log[0].second, 2);
  EXPECT_DOUBLE_EQ(log[2].first, 8.0);
  EXPECT_DOUBLE_EQ(engine.now(), 8.0);
}

TEST(EngineTest, SelfSchedulingChainTerminates) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  engine.add_component(std::make_unique<Recorder>(0, log));
  engine.schedule(-1, 0, 0.0, 1, 5);  // countdown 5 → 0
  EXPECT_EQ(engine.run(), 6u);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_EQ(log.back().second, 0);
}

TEST(EngineTest, MaxEventsLimitsDispatch) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  engine.add_component(std::make_unique<Recorder>(0, log));
  engine.schedule(-1, 0, 0.0, 1, 100);
  EXPECT_EQ(engine.run(10), 10u);
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(engine.run(), 91u);  // remaining chain
}

TEST(EngineTest, ComponentIdMustMatchOrder) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  EXPECT_THROW(engine.add_component(std::make_unique<Recorder>(3, log)),
               Error);
}

TEST(EngineTest, NegativeDelayThrows) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  engine.add_component(std::make_unique<Recorder>(0, log));
  EXPECT_THROW(engine.schedule(-1, 0, -1.0, 0), Error);
}

TEST(EngineTest, UnknownDestinationThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule(-1, 0, 1.0, 0), Error);
}

TEST(EngineTest, EventsProcessedAccumulates) {
  Engine engine;
  std::vector<std::pair<SimTime, std::int64_t>> log;
  engine.add_component(std::make_unique<Recorder>(0, log));
  engine.schedule(-1, 0, 1.0, 0);
  engine.run();
  engine.schedule(-1, 0, 1.0, 0);
  engine.run();
  EXPECT_EQ(engine.events_processed(), 2u);
}

}  // namespace
}  // namespace picp
