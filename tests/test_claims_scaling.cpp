// Claims: scaling behavior of bin-based mapping.
//   Fig 5  — every processor configuration peaks identically early in the
//            run (bins < base rank count), then the configurations above
//            the base dip below it once the particle boundary expands.
//   Fig 6  — with the processor cap relaxed, the bin count grows with the
//            particle boundary; its maximum is the optimal processor count.
//   §IV-B  — that optimal count lies strictly between the ladder's first
//            two steps, and adding processors beyond it cannot improve the
//            bin-based distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/claims.hpp"
#include "support/claims_fixture.hpp"
#include "support/shape_gtest.hpp"

namespace picp::testing {
namespace {

TEST(ClaimsFig5, PeaksPlateauThenSplit) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const std::vector<Rank> ladder = claims_rank_counts();

  const std::map<Rank, std::vector<std::int64_t>> peaks =
      claims::peak_series(claims_mesh(), fixture.trace_path, ladder, "bin",
                          cfg.filter_size);
  const claims::ScalingSplit split =
      claims::scaling_split(peaks, ladder.front());
  ASSERT_GT(split.num_intervals, 0u);

  // (i) Early plateau: the configurations separate only after a sizable
  // prefix of the run (the bin count stays below the base rank count).
  EXPECT_GE(split.split_index, split.num_intervals * 3 / 10)
      << "Fig 5: configurations separated after only " << split.split_index
      << " of " << split.num_intervals
      << " intervals — claimed an early plateau with identical peaks";
  // During the plateau every configuration's peak is identical.
  const std::vector<std::int64_t>& base = peaks.at(ladder.front());
  for (const Rank ranks : ladder)
    for (std::size_t t = 0; t < split.split_index; ++t)
      ASSERT_EQ(peaks.at(ranks)[t], base[t])
          << "Fig 5: R=" << ranks << " deviates from the base peak at "
          << "interval " << t << ", inside the claimed plateau";

  // (ii) The split happens: larger configurations eventually dip below.
  EXPECT_LT(split.split_index, split.num_intervals)
      << "Fig 5: configurations above the base never dipped below it — the "
      << "particle boundary should outgrow the base rank count";

  // (iii) Configurations above the base track each other throughout (the
  // bin count never reaches the second ladder step).
  EXPECT_GE(split.identical_above, split.num_intervals * 9 / 10)
      << "Fig 5: configurations above the base agree on only "
      << split.identical_above << " of " << split.num_intervals
      << " intervals — claimed identical curves";
}

TEST(ClaimsFig6, BinCountGrowsWithParticleBoundary) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();

  const claims::BinGrowth growth =
      claims::relaxed_bin_growth(fixture.trace_path, cfg.filter_size);
  ASSERT_FALSE(growth.bins.empty());

  const std::vector<double> bins = shape::to_doubles(growth.bins);
  EXPECT_SHAPE(shape::span_ratio_at_least(bins, 3.0,
                                          "Fig 6 bin growth (last/first)"));
  EXPECT_SHAPE(shape::monotone_increasing(bins, 0.25));
}

TEST(ClaimsOptimalProcs, MaxBinsIsTheOptimalProcessorCount) {
  const ClaimsFixture& fixture = claims_fixture();
  const SimConfig cfg = claims_config();
  const std::vector<Rank> ladder = claims_rank_counts();

  const claims::BinGrowth growth =
      claims::relaxed_bin_growth(fixture.trace_path, cfg.filter_size);
  const Rank optimal = static_cast<Rank>(growth.max_bins);

  // §IV-B: the optimal count lands strictly between the first two ladder
  // steps (the fixture is calibrated for this regime, mirroring the
  // paper's 1104 between 1044 and 2088).
  EXPECT_GT(optimal, ladder[0]) << "§IV-B: optimal processor count "
                                << optimal << " not above base config";
  EXPECT_LT(optimal, ladder[1]) << "§IV-B: optimal processor count "
                                << optimal << " not below second config";

  const std::map<Rank, std::vector<std::int64_t>> peaks = claims::peak_series(
      claims_mesh(), fixture.trace_path,
      {ladder[0], optimal, ladder[1], ladder[2]}, "bin", cfg.filter_size);

  // Running at the optimal count already achieves the peak workload of any
  // larger configuration, interval by interval...
  EXPECT_EQ(peaks.at(optimal), peaks.at(ladder[1]))
      << "§IV-B: R=" << optimal << " does not match R=" << ladder[1];
  EXPECT_EQ(peaks.at(optimal), peaks.at(ladder[2]))
      << "§IV-B: R=" << optimal << " does not match R=" << ladder[2];

  // ...and strictly improves on the base configuration once the bin count
  // outgrows it. The run-wide maximum can tie (the dominant bin is bounded
  // by the filter threshold, not the processor budget), so the claim is
  // per-interval: the base folds multiple bins per rank after the split and
  // must peak strictly higher somewhere, and in aggregate.
  const std::vector<std::int64_t>& base_peaks = peaks.at(ladder[0]);
  const std::vector<std::int64_t>& optimal_peaks = peaks.at(optimal);
  ASSERT_EQ(base_peaks.size(), optimal_peaks.size());
  std::size_t improved = 0;
  std::int64_t base_total = 0;
  std::int64_t optimal_total = 0;
  for (std::size_t t = 0; t < base_peaks.size(); ++t) {
    if (optimal_peaks[t] < base_peaks[t]) ++improved;
    base_total += base_peaks[t];
    optimal_total += optimal_peaks[t];
  }
  EXPECT_GT(improved, 0u)
      << "§IV-B: the optimal count never beats the base config's "
      << "per-interval peak";
  EXPECT_LT(optimal_total, base_total)
      << "§IV-B: the optimal count should improve the aggregate peak "
      << "workload over the base config (measured " << optimal_total
      << " vs " << base_total << ")";
}

}  // namespace
}  // namespace picp::testing
