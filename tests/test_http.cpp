// Wire-level tests for the from-scratch HTTP/1.1 framing in src/serve.
// Each test drives an HttpConnection over one end of a socketpair and
// speaks raw bytes on the other, so the parser sees exactly the stream a
// peer would produce — including malformed, truncated, and oversized ones.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "serve/http.hpp"

namespace picp::serve {
namespace {

struct WirePair {
  std::unique_ptr<HttpConnection> conn;  // the side under test
  int raw = -1;                          // the scripted peer

  WirePair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    conn = std::make_unique<HttpConnection>(fds[0]);
    raw = fds[1];
  }
  ~WirePair() {
    if (raw >= 0) ::close(raw);
  }

  void send(const std::string& bytes) const {
    ASSERT_EQ(::send(raw, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_peer() {
    ::close(raw);
    raw = -1;
  }
  std::string drain() const {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(raw, buf, sizeof buf, MSG_DONTWAIT);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }
};

HttpLimits quick_limits() {
  HttpLimits limits;
  limits.io_timeout_ms = 2000;
  return limits;
}

TEST(HttpParse, SimpleGetRequest) {
  WirePair wire;
  wire.send("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_TRUE(request.keep_alive());
  ASSERT_NE(request.header("accept"), nullptr);
  EXPECT_EQ(*request.header("accept"), "*/*");
}

TEST(HttpParse, HeaderNamesAreCaseInsensitiveByConstruction) {
  WirePair wire;
  wire.send("POST /v1/predict HTTP/1.1\r\nCoNtEnT-LeNgTh: 2\r\n\r\nhi");
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.body, "hi");
  ASSERT_NE(request.header("content-length"), nullptr);
}

TEST(HttpParse, BodySplitAcrossManySegmentsReassembles) {
  WirePair wire;
  std::thread writer([&] {
    wire.send("POST /v1/predict HTTP/1.1\r\nContent-Length: 10\r\n");
    wire.send("\r\n12345");
    wire.send("67890");
  });
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.body, "1234567890");
  writer.join();
}

TEST(HttpParse, ConnectionCloseDisablesKeepAlive) {
  WirePair wire;
  wire.send("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_FALSE(request.keep_alive());
}

TEST(HttpParse, BareLfLineEndingsTolerated) {
  WirePair wire;
  wire.send("GET /healthz HTTP/1.1\nHost: x\n\n");
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.target, "/healthz");
}

TEST(HttpParse, CleanEofBeforeFirstByteReturnsFalse) {
  WirePair wire;
  wire.close_peer();
  HttpRequest request;
  EXPECT_FALSE(wire.conn->read_request(request, quick_limits()));
}

TEST(HttpParse, EofMidMessageIsAnError) {
  WirePair wire;
  wire.send("GET /healthz HTTP/1.1\r\nHos");
  wire.close_peer();
  HttpRequest request;
  try {
    wire.conn->read_request(request, quick_limits());
    FAIL() << "truncated head parsed";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
  }
}

TEST(HttpParse, MalformedRequestLineIs400) {
  WirePair wire;
  wire.send("COMPLETE NONSENSE\r\n\r\n");
  HttpRequest request;
  try {
    wire.conn->read_request(request, quick_limits());
    FAIL() << "garbage request line parsed";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
  }
}

TEST(HttpParse, NegativeContentLengthIs400) {
  WirePair wire;
  wire.send("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n");
  HttpRequest request;
  try {
    wire.conn->read_request(request, quick_limits());
    FAIL() << "negative Content-Length accepted";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 400);
  }
}

TEST(HttpParse, ChunkedTransferEncodingIs501) {
  WirePair wire;
  wire.send("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  try {
    wire.conn->read_request(request, quick_limits());
    FAIL() << "chunked encoding accepted";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 501);
  }
}

TEST(HttpParse, OversizedCompleteHeaderBlockIs431) {
  WirePair wire;
  HttpLimits limits = quick_limits();
  limits.max_header_bytes = 256;
  std::string head = "GET / HTTP/1.1\r\nX-Big: ";
  head.append(1024, 'a');
  head += "\r\n\r\n";
  wire.send(head);
  HttpRequest request;
  try {
    wire.conn->read_request(request, limits);
    FAIL() << "oversized header block accepted";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 431);
  }
}

TEST(HttpParse, UnterminatedHeaderStreamIs431) {
  WirePair wire;
  HttpLimits limits = quick_limits();
  limits.max_header_bytes = 256;
  // No terminator at all: the cap must fire from buffered growth alone.
  std::string head = "GET / HTTP/1.1\r\nX-Drip: ";
  head.append(1024, 'b');
  wire.send(head);
  HttpRequest request;
  try {
    wire.conn->read_request(request, limits);
    FAIL() << "unterminated oversized header accepted";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 431);
  }
}

TEST(HttpParse, OversizedBodyIsRejectedBeforeItIsRead) {
  WirePair wire;
  HttpLimits limits = quick_limits();
  limits.max_body_bytes = 16;
  // Only the head is sent: the 413 must come from the declared length, not
  // from buffering a body we intend to refuse.
  wire.send("POST / HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n");
  HttpRequest request;
  try {
    wire.conn->read_request(request, limits);
    FAIL() << "oversized body accepted";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 413);
  }
}

TEST(HttpParse, StalledPeerTimesOutWith408) {
  WirePair wire;
  HttpLimits limits;
  limits.io_timeout_ms = 60;
  wire.send("GET / HTTP/1.1\r\nHost:");  // then silence
  HttpRequest request;
  try {
    wire.conn->read_request(request, limits);
    FAIL() << "stalled read did not time out";
  } catch (const HttpError& e) {
    EXPECT_EQ(e.status(), 408);
  }
}

TEST(HttpRoundTrip, ResponseWriteThenParse) {
  WirePair server_side;
  HttpResponse out;
  out.status = 404;
  out.set_header("Content-Type", "application/json");
  out.set_header("X-Picp-Cache", "miss");
  out.body = "{\"error\":\"no\"}";
  server_side.conn->write_response(out);

  const std::string wire_bytes = server_side.drain();
  EXPECT_NE(wire_bytes.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire_bytes.find("Content-Length: 14\r\n"), std::string::npos);

  WirePair client_side;
  client_side.send(wire_bytes);
  HttpResponse in;
  ASSERT_TRUE(client_side.conn->read_response(in, quick_limits()));
  EXPECT_EQ(in.status, 404);
  EXPECT_EQ(in.body, out.body);
  ASSERT_NE(in.header("x-picp-cache"), nullptr);
  EXPECT_EQ(*in.header("x-picp-cache"), "miss");
}

TEST(HttpRoundTrip, RequestWriteThenParse) {
  WirePair client_side;
  HttpRequest out;
  out.method = "POST";
  out.target = "/v1/predict";
  out.body = "{\"ranks\":[16]}";
  client_side.conn->write_request(out, "127.0.0.1:9");

  const std::string wire_bytes = client_side.drain();
  WirePair server_side;
  server_side.send(wire_bytes);
  HttpRequest in;
  ASSERT_TRUE(server_side.conn->read_request(in, quick_limits()));
  EXPECT_EQ(in.method, "POST");
  EXPECT_EQ(in.target, "/v1/predict");
  EXPECT_EQ(in.body, out.body);
  ASSERT_NE(in.header("host"), nullptr);
}

TEST(HttpRoundTrip, PipelinedKeepAliveRequestsParseBackToBack) {
  WirePair wire;
  wire.send(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.target, "/a");
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "xyz");
  ASSERT_TRUE(wire.conn->read_request(request, quick_limits()));
  EXPECT_EQ(request.target, "/c");
  EXPECT_FALSE(request.keep_alive());
}

TEST(HttpRoundTrip, StatusReasonsCoverTheServingSet) {
  EXPECT_STREQ(status_reason(200), "OK");
  EXPECT_STREQ(status_reason(400), "Bad Request");
  EXPECT_STREQ(status_reason(404), "Not Found");
  EXPECT_STREQ(status_reason(405), "Method Not Allowed");
  EXPECT_STREQ(status_reason(408), "Request Timeout");
  EXPECT_STREQ(status_reason(503), "Service Unavailable");
}

}  // namespace
}  // namespace picp::serve
