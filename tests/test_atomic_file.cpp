#include "util/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

namespace fs = std::filesystem;

std::string tmp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    cleanup_.push_back(path + ".tmp");
    cleanup_.push_back(path + ".part");
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(AtomicFileTest, CommitPublishesAndRemovesTemp) {
  const std::string path = track(tmp_path("picp_atomic_commit.bin"));
  AtomicFile file(path);
  file.write("hello ", 6);
  file.write("world", 5);
  EXPECT_EQ(file.offset(), 11u);
  EXPECT_FALSE(fs::exists(path));  // nothing visible before commit
  EXPECT_TRUE(fs::exists(file.temp_path()));
  file.commit();
  EXPECT_TRUE(file.committed());
  EXPECT_FALSE(fs::exists(file.temp_path()));
  EXPECT_EQ(read_file(path), "hello world");
}

TEST_F(AtomicFileTest, DestructionWithoutCommitRemovesTemp) {
  const std::string path = track(tmp_path("picp_atomic_abort.bin"));
  {
    AtomicFile file(path);
    file.write("doomed", 6);
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, KeepOnAbortLeavesSalvageablePartial) {
  const std::string path = track(tmp_path("picp_atomic_keep.bin"));
  AtomicFileOptions options;
  options.suffix = ".part";
  options.keep_on_abort = true;
  {
    AtomicFile file(path, options);
    file.write("partial", 7);
    file.abort();
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(read_file(path + ".part"), "partial");
}

TEST_F(AtomicFileTest, OldContentSurvivesUntilCommit) {
  const std::string path = track(tmp_path("picp_atomic_replace.bin"));
  {
    AtomicFile file(path);
    file.write("old", 3);
    file.commit();
  }
  {
    AtomicFile file(path);
    file.write("new!", 4);
    EXPECT_EQ(read_file(path), "old");  // reader still sees the old file
    file.commit();
  }
  EXPECT_EQ(read_file(path), "new!");
}

TEST_F(AtomicFileTest, WriteAtPatchesWithoutMovingCursor) {
  const std::string path = track(tmp_path("picp_atomic_patch.bin"));
  AtomicFile file(path);
  file.write("XXXX-body", 9);
  file.write_at(0, "HEAD", 4);
  EXPECT_EQ(file.offset(), 9u);  // cursor untouched by the patch
  file.commit();
  EXPECT_EQ(read_file(path), "HEAD-body");
}

TEST_F(AtomicFileTest, ReopenTruncatesPartialTailAndAppends) {
  const std::string path = track(tmp_path("picp_atomic_reopen.bin"));
  AtomicFileOptions options;
  options.suffix = ".part";
  options.keep_on_abort = true;
  {
    AtomicFile file(path, options);
    file.write("0123456789TORNTAIL", 18);
    file.abort();  // crash leaves 18 bytes, only 10 known-good
  }
  auto file = AtomicFile::reopen(path, 10, options);
  EXPECT_EQ(file->offset(), 10u);
  file->write("resumed", 7);
  file->commit();
  EXPECT_EQ(read_file(path), "0123456789resumed");
}

TEST_F(AtomicFileTest, ReopenMissingTempThrows) {
  const std::string path = track(tmp_path("picp_atomic_noreopen.bin"));
  AtomicFileOptions options;
  options.suffix = ".part";
  EXPECT_THROW(AtomicFile::reopen(path, 0, options), Error);
}

TEST_F(AtomicFileTest, WriteAfterCommitThrows) {
  const std::string path = track(tmp_path("picp_atomic_closed.bin"));
  AtomicFile file(path);
  file.write("x", 1);
  file.commit();
  EXPECT_THROW(file.write("y", 1), Error);
}

TEST_F(AtomicFileTest, AtomicWriteFileRoundTrip) {
  const std::string path = track(tmp_path("picp_atomic_whole.bin"));
  const std::string payload = "whole-file payload\n";
  atomic_write_file(path, payload.data(), payload.size());
  EXPECT_EQ(read_file(path), payload);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Overwrite goes through the same temp+rename dance.
  atomic_write_file(path, "2", 1);
  EXPECT_EQ(read_file(path), "2");
}

}  // namespace
}  // namespace picp
