#include "model/dataset.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset data({"np", "ngp"});
  data.add(std::array<double, 2>{10.0, 3.0}, 0.5);
  data.add(std::array<double, 2>{20.0, 6.0}, 1.0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_DOUBLE_EQ(data.row(0)[0], 10.0);
  EXPECT_DOUBLE_EQ(data.row(1)[1], 6.0);
  EXPECT_DOUBLE_EQ(data.target(0), 0.5);
  EXPECT_DOUBLE_EQ(data.targets()[1], 1.0);
}

TEST(DatasetTest, FeatureCountEnforced) {
  Dataset data({"x"});
  EXPECT_THROW(data.add(std::array<double, 2>{1.0, 2.0}, 0.0), Error);
}

TEST(DatasetTest, FeatureMaxAndTargetMean) {
  Dataset data({"x"});
  data.add(std::array<double, 1>{-5.0}, 2.0);
  data.add(std::array<double, 1>{3.0}, 4.0);
  EXPECT_DOUBLE_EQ(data.feature_max(0), 5.0);
  EXPECT_DOUBLE_EQ(data.target_mean(), 3.0);
  EXPECT_THROW(data.feature_max(1), Error);
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Dataset data({"x"});
  for (int i = 0; i < 100; ++i)
    data.add(std::array<double, 1>{static_cast<double>(i)}, i * 2.0);
  const auto [train, test] = data.split(0.7, 42);
  EXPECT_EQ(train.size(), 70u);
  EXPECT_EQ(test.size(), 30u);
  // Every original target appears exactly once across the two halves.
  std::vector<double> all;
  for (std::size_t i = 0; i < train.size(); ++i)
    all.push_back(train.target(i));
  for (std::size_t i = 0; i < test.size(); ++i) all.push_back(test.target(i));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)], i * 2.0);
}

TEST(DatasetTest, SplitDeterministicPerSeed) {
  Dataset data({"x"});
  for (int i = 0; i < 50; ++i)
    data.add(std::array<double, 1>{static_cast<double>(i)}, i * 1.0);
  const auto [a_train, a_test] = data.split(0.5, 7);
  const auto [b_train, b_test] = data.split(0.5, 7);
  ASSERT_EQ(a_train.size(), b_train.size());
  for (std::size_t i = 0; i < a_train.size(); ++i)
    EXPECT_DOUBLE_EQ(a_train.target(i), b_train.target(i));
  const auto [c_train, c_test] = data.split(0.5, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a_train.size(); ++i)
    if (a_train.target(i) != c_train.target(i)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(DatasetTest, SplitRejectsBadFraction) {
  Dataset data({"x"});
  data.add(std::array<double, 1>{1.0}, 1.0);
  EXPECT_THROW(data.split(0.0, 1), Error);
  EXPECT_THROW(data.split(1.0, 1), Error);
}

}  // namespace
}  // namespace picp
