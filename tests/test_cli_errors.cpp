// Exit-code contract of picpredict's error paths (doc comment in
// tools/picpredict.cpp): 0 success, 1 runtime failure, 2 usage error.
// Scripts and the serving smoke tests branch on these codes, so every
// failure must land in the right class with a one-line diagnostic — never
// exit 0 with an error on stdout, never a bare usage dump for a missing
// file. Drives the real binary via PICP_PICPREDICT_BINARY.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace_writer.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd =
      std::string("'") + PICP_PICPREDICT_BINARY + "' " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliResult result;
  if (pipe == nullptr) return result;
  std::array<char, 512> buf;
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) !=
         nullptr)
    result.output += buf.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_trace(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  TraceWriter writer(path, 40, 10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     CoordKind::kFloat64);
  Xoshiro256 rng(11);
  std::vector<Vec3> pos(40);
  for (std::size_t s = 0; s < 3; ++s) {
    for (auto& p : pos)
      p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    writer.append(s * 10, pos);
  }
  writer.close();
  return path;
}

// --- exit 2: the user asked for something malformed -------------------------

TEST(CliErrors, UnknownCommandExits2) {
  const CliResult result = run_cli("transmogrify");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command: transmogrify"),
            std::string::npos)
      << result.output;
}

TEST(CliErrors, MissingRequiredFlagExits2AndNamesIt) {
  const std::string path = write_trace("cli_err_noranks.bin");
  const CliResult result = run_cli("workload '" + path + "'");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("missing --ranks"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliErrors, NonNumericIntegerFlagExits2AndNamesTheFlag) {
  const std::string path = write_trace("cli_err_badranks.bin");
  const CliResult result = run_cli("workload '" + path + "' --ranks banana");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--ranks"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("banana"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliErrors, NonNumericDoubleFlagExits2AndNamesTheFlag) {
  const std::string path = write_trace("cli_err_badfilter.bin");
  const CliResult result =
      run_cli("workload '" + path + "' --ranks 4 --filter tiny");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--filter"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliErrors, ServeWithoutConfigExits2) {
  const CliResult result = run_cli("serve");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--config"), std::string::npos)
      << result.output;
}

TEST(CliErrors, QueryWithoutPortExits2) {
  const CliResult result = run_cli("query /healthz");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("missing --port"), std::string::npos)
      << result.output;
}

// --- exit 1: the request was well-formed but the world disagreed ------------

TEST(CliErrors, MissingTraceFileExits1WithErrnoContext) {
  const CliResult result = run_cli(
      "workload '" + testing::TempDir() + "/no_such.trace' --ranks 4");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("picpredict:"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("cannot read trace file"), std::string::npos)
      << result.output;
  // The errno translation is the actionable part of the diagnostic.
  EXPECT_NE(result.output.find("No such file"), std::string::npos)
      << result.output;
  // A runtime failure is not a usage error; no usage wall.
  EXPECT_EQ(result.output.find("usage:"), std::string::npos)
      << result.output;
}

TEST(CliErrors, DirectoryAsInputExits1NotARegularFile) {
  const CliResult result =
      run_cli("workload '" + testing::TempDir() + "' --ranks 4");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("not a regular file"), std::string::npos)
      << result.output;
}

TEST(CliErrors, MissingModelsFileExits1BeforeTouchingTheTrace) {
  const std::string path = write_trace("cli_err_nomodels.bin");
  const CliResult result =
      run_cli("predict '" + path + "' --ranks 4 --models '" +
              testing::TempDir() + "/no_such.models'");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot read models file"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliErrors, MissingSimulateConfigExits1WithErrnoContext) {
  const CliResult result =
      run_cli("simulate '" + testing::TempDir() +
              "/no_such.ini' --trace /dev/null");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot read config file"), std::string::npos)
      << result.output;
}

TEST(CliErrors, MissingTrainCsvExits1WithErrnoContext) {
  const CliResult result = run_cli("train '" + testing::TempDir() +
                                   "/no_such.csv' --out /dev/null");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("cannot read timings CSV"), std::string::npos)
      << result.output;
}

// --- exit 0: the happy path stays exit 0 with flags in play -----------------

TEST(CliErrors, WorkloadOnRealTraceExits0) {
  const std::string path = write_trace("cli_err_ok.bin");
  const CliResult result = run_cli("workload '" + path +
                                   "' --ranks 4 --nelx 4 --nely 4 --nelz 4");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("intervals"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
