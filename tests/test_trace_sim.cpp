#include "bsst/trace_sim.hpp"

#include <gtest/gtest.h>

#include "bsst/network_model.hpp"
#include "util/error.hpp"

namespace picp {
namespace {

TraceSimInput uniform_input(Rank ranks, std::size_t intervals,
                            double compute) {
  TraceSimInput input;
  input.num_ranks = ranks;
  input.num_intervals = intervals;
  input.compute_seconds.assign(
      static_cast<std::size_t>(ranks) * intervals, compute);
  input.network.alpha = 1e-6;
  input.network.beta = 1e9;
  return input;
}

TEST(TraceSim, UniformComputeNoCommIsComputePlusBarriers) {
  const auto input = uniform_input(4, 5, 0.01);
  const SimReport report = run_trace_simulation(input);
  const NetworkModel net(input.network);
  const double expected = 5 * (0.01 + net.collective_time(4));
  EXPECT_NEAR(report.total_seconds, expected, 1e-12);
  EXPECT_NEAR(report.critical_path_seconds, 0.05, 1e-12);
  for (const double busy : report.rank_busy_seconds)
    EXPECT_NEAR(busy, 0.05, 1e-12);
}

TEST(TraceSim, SlowestRankDominatesEachInterval) {
  TraceSimInput input = uniform_input(3, 2, 0.0);
  // Interval 0: rank 1 slow; interval 1: rank 2 slow.
  input.compute_seconds = {0.001, 0.010, 0.002,   // t=0
                           0.003, 0.001, 0.020};  // t=1
  const SimReport report = run_trace_simulation(input);
  const NetworkModel net(input.network);
  const double expected = 0.010 + 0.020 + 2 * net.collective_time(3);
  EXPECT_NEAR(report.total_seconds, expected, 1e-12);
  EXPECT_NEAR(report.critical_path_seconds, 0.030, 1e-15);
}

TEST(TraceSim, MessagesDelayReceivers) {
  TraceSimInput input = uniform_input(2, 1, 0.0);
  input.compute_seconds = {0.010, 0.001};  // rank 0 slow, rank 1 fast
  CommMatrix comm(2, 1);
  comm.add(0, 1, 0, 1000);  // rank 0 sends 1000 particles to rank 1
  input.comm_real = &comm;
  const SimReport report = run_trace_simulation(input);
  const NetworkModel net(input.network);
  // Rank 1 cannot finish before rank 0's message arrives at
  // 0.010 + msg_time(1000 * bytes_per_particle).
  const double msg =
      net.message_time(1000 * input.network.bytes_per_particle);
  const double expected = 0.010 + msg + net.collective_time(2);
  EXPECT_NEAR(report.total_seconds, expected, 1e-12);
}

TEST(TraceSim, GhostAndRealMessagesToSameDstMerge) {
  TraceSimInput input = uniform_input(2, 1, 0.001);
  CommMatrix real(2, 1), ghost(2, 1);
  real.add(0, 1, 0, 10);
  ghost.add(0, 1, 0, 20);
  input.comm_real = &real;
  input.comm_ghost = &ghost;
  const SimReport report = run_trace_simulation(input);
  const NetworkModel net(input.network);
  const double bytes = 10 * input.network.bytes_per_particle +
                       20 * input.network.bytes_per_ghost;
  const double expected =
      0.001 + net.message_time(bytes) + net.collective_time(2);
  EXPECT_NEAR(report.total_seconds, expected, 1e-12);
}

TEST(TraceSim, IntervalEndsAreMonotone) {
  TraceSimInput input = uniform_input(8, 10, 1e-4);
  CommMatrix comm(8, 10);
  for (std::size_t t = 1; t < 10; ++t)
    comm.add(static_cast<Rank>(t % 8), static_cast<Rank>((t + 3) % 8), t,
             50);
  input.comm_real = &comm;
  const SimReport report = run_trace_simulation(input);
  for (std::size_t t = 1; t < 10; ++t)
    EXPECT_GT(report.interval_end[t], report.interval_end[t - 1]);
  EXPECT_DOUBLE_EQ(report.total_seconds, report.interval_end.back());
}

TEST(TraceSim, SingleRankNoBarrierCost) {
  const auto input = uniform_input(1, 3, 0.002);
  const SimReport report = run_trace_simulation(input);
  EXPECT_NEAR(report.total_seconds, 0.006, 1e-12);
}

TEST(TraceSim, EventCountMatchesStructure) {
  const auto input = uniform_input(4, 2, 0.001);
  const SimReport report = run_trace_simulation(input);
  // Per interval per rank: start + compute-done + rank-done = 3 events.
  EXPECT_EQ(report.events, 4u * 2u * 3u);
}

TEST(TraceSim, CommBeyondIntervalsIgnored) {
  TraceSimInput input = uniform_input(2, 2, 0.001);
  CommMatrix comm(2, 5);  // more intervals than the sim runs
  comm.add(0, 1, 4, 100);
  input.comm_real = &comm;
  EXPECT_NO_THROW(run_trace_simulation(input));
}

TEST(TraceSim, InputValidation) {
  TraceSimInput input = uniform_input(2, 2, 0.0);
  input.compute_seconds.pop_back();
  EXPECT_THROW(run_trace_simulation(input), Error);
  TraceSimInput empty;
  EXPECT_THROW(run_trace_simulation(empty), Error);
  TraceSimInput bad = uniform_input(2, 1, 0.0);
  CommMatrix wrong(3, 1);
  bad.comm_real = &wrong;
  EXPECT_THROW(run_trace_simulation(bad), Error);
}

}  // namespace
}  // namespace picp
