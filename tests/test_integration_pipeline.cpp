// End-to-end integration of the full framework (paper Fig 2): instrumented
// proxy run → Model Generator → Dynamic Workload Generator → trace-driven
// system simulation → validation against the instrumented measurements.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "core/validation.hpp"
#include "picsim/sim_driver.hpp"

namespace picp {
namespace {

struct EndToEnd {
  SimConfig cfg;
  std::string trace_path;
  SimResult app;
  ModelSet models;
  std::unique_ptr<SimDriver> driver;

  EndToEnd() {
    cfg.nelx = 8;
    cfg.nely = 8;
    cfg.nelz = 16;
    cfg.bed.num_particles = 2000;
    cfg.num_iterations = 300;
    cfg.sample_every = 50;
    cfg.num_ranks = 16;
    cfg.filter_size = 0.08;
    cfg.measure = true;
    cfg.measure_min_seconds = 5e-6;
    cfg.measure_max_reps = 16;
    // Test-unique name: ctest runs every TEST as its own process, and the
    // destructor's remove() must not race a sibling's writer.
    trace_path = testing::TempDir() + "/picp_e2e_" +
                 testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".bin";
    driver = std::make_unique<SimDriver>(cfg);
    app = driver->run(trace_path);

    ModelGenConfig mg;
    mg.symreg.population = 128;
    mg.symreg.generations = 25;
    mg.symreg.threads = 1;
    models = train_models(app.timings, mg);
  }
  ~EndToEnd() { std::remove(trace_path.c_str()); }
};

TEST(PipelineEndToEnd, FullPredictionRuns) {
  EndToEnd e;
  PredictionPipeline pipeline(e.driver->mesh(), e.models);
  PredictionConfig pc;
  pc.mapper_kind = "bin";
  pc.num_ranks = e.cfg.num_ranks;
  pc.filter_size = e.cfg.filter_size;
  TraceReader reader(e.trace_path);
  const PredictionOutcome outcome = pipeline.predict(reader, pc);

  EXPECT_EQ(outcome.workload.num_intervals(), 6u);
  EXPECT_GT(outcome.sim.total_seconds, 0.0);
  // Total time includes communication + barriers, so it dominates the pure
  // compute critical path.
  EXPECT_GE(outcome.sim.total_seconds,
            outcome.sim.critical_path_seconds);
  EXPECT_GT(outcome.sim.events, 0u);
}

TEST(PipelineEndToEnd, ValidationMapeIsReasonable) {
  EndToEnd e;
  PredictionPipeline pipeline(e.driver->mesh(), e.models);
  PredictionConfig pc;
  pc.num_ranks = e.cfg.num_ranks;
  pc.filter_size = e.cfg.filter_size;
  TraceReader reader(e.trace_path);
  const WorkloadResult workload = pipeline.generate_workload(reader, pc);

  const Predictor predictor(e.models, e.cfg.filter_size);
  const ValidationReport report =
      validate_predictions(e.app.timings, predictor, workload, 1e-6);
  EXPECT_FALSE(report.kernels.empty());
  // Tiny workloads on a noisy machine: this guards against gross breakage
  // (mismatched features, broken replay), not paper-level accuracy.
  EXPECT_LT(report.average_mape, 80.0);
  for (const auto& k : report.kernels) EXPECT_GT(k.samples, 0u);
}

TEST(PipelineEndToEnd, SingleTraceMultipleTargets) {
  EndToEnd e;
  PredictionPipeline pipeline(e.driver->mesh(), e.models);
  TraceReader reader(e.trace_path);
  double prev_peak = 1e18;
  for (const Rank ranks : {8, 16, 48}) {
    PredictionConfig pc;
    pc.num_ranks = ranks;
    pc.filter_size = e.cfg.filter_size;
    const PredictionOutcome outcome = pipeline.predict(reader, pc);
    EXPECT_EQ(outcome.workload.num_ranks, ranks);
    EXPECT_GT(outcome.sim.total_seconds, 0.0);
    // Spreading over more ranks cannot increase the modeled critical path.
    // Generous slack: the models behind it are trained on wall-clock
    // measurements from this same process, so the comparison inherits
    // machine noise. The sharp scaling-shape claims live in the claims
    // tier (ClaimsFig5), which runs on a calibrated cached fixture.
    EXPECT_LE(outcome.sim.critical_path_seconds, prev_peak * 1.5);
    prev_peak = outcome.sim.critical_path_seconds;
  }
}

TEST(PipelineEndToEnd, WorkloadGenerationFarCheaperThanAppRun) {
  // The §II claim, scaled down. Both sides are wall-clock on a tiny run,
  // so the gate is deliberately loose (2x) — only gross inversions fail
  // here. The quantitative speedup claim (>=3x on a calibrated fixture) is
  // enforced by ClaimsGenCost in the claims tier.
  EndToEnd e;
  PredictionPipeline pipeline(e.driver->mesh(), e.models);
  PredictionConfig pc;
  pc.num_ranks = e.cfg.num_ranks;
  pc.filter_size = e.cfg.filter_size;
  TraceReader reader(e.trace_path);
  const PredictionOutcome outcome = pipeline.predict(reader, pc);
  EXPECT_LT(outcome.workload_gen_seconds, e.app.wall_seconds * 2.0);
}

}  // namespace
}  // namespace picp
