// Unit tests for the observability layer: histogram quantile estimation,
// Prometheus text exposition, trace-id hygiene, exclusive-time stage
// recording, and the NDJSON access log (line schema + rotation). The
// reactor-integrated pieces (trace propagation over real sockets, the
// deterministic span-sum property) live in test_reactor.cpp.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "serve/access_log.hpp"
#include "serve/request_trace.hpp"
#include "telemetry/json.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"
#include "util/error.hpp"

namespace picp::serve {
namespace {

using picp::Json;
using picp::telemetry::HistogramSnapshot;
using picp::telemetry::MetricsSnapshot;

// --- HistogramSnapshot::quantile --------------------------------------------

HistogramSnapshot make_histogram(std::vector<double> bounds,
                                 std::vector<std::uint64_t> counts) {
  HistogramSnapshot h;
  h.name = "test";
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (const std::uint64_t c : h.counts) h.count += c;
  return h;
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const HistogramSnapshot h = make_histogram({1.0, 2.0}, {0, 0, 0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinTheTargetBucket) {
  // 10 observations uniform over (0, 100]: the estimator treats the bucket
  // as uniformly filled, so q maps linearly onto the bucket span.
  const HistogramSnapshot h = make_histogram({100.0}, {10, 0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(HistogramQuantile, CrossesBucketsAtTheCumulativeRank) {
  // 4 in (0,10], 4 in (10,100]: p50 is the top of the first bucket, p75
  // is halfway through the second.
  const HistogramSnapshot h = make_histogram({10.0, 100.0}, {4, 4, 0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 55.0);
}

TEST(HistogramQuantile, OverflowClampsToTheLargestFiniteBound) {
  // Everything in the overflow bucket: there is no upper edge to
  // interpolate toward, so every quantile clamps to the last bound.
  const HistogramSnapshot h = make_histogram({10.0, 100.0}, {0, 0, 7});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
}

TEST(HistogramQuantile, OutOfRangeQClamps) {
  const HistogramSnapshot h = make_histogram({100.0}, {10, 0});
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

// --- Prometheus exposition --------------------------------------------------

TEST(Prometheus, NameSanitization) {
  using picp::telemetry::prometheus_name;
  EXPECT_EQ(prometheus_name("serve.queue_depth"), "picp_serve_queue_depth");
  EXPECT_EQ(prometheus_name("serve.red.total_us.predict.2xx"),
            "picp_serve_red_total_us_predict_2xx");
  EXPECT_EQ(prometheus_name("weird-name with spaces"),
            "picp_weird_name_with_spaces");
}

/// Count occurrences of `needle` in `haystack`.
std::size_t occurrences(const std::string& haystack,
                        const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size()))
    ++n;
  return n;
}

TEST(Prometheus, TextFormatCoversEveryFamilyExactlyOnce) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"serve.requests", 42});
  snapshot.gauges.push_back({"serve.inflight", 3.0});
  HistogramSnapshot h = make_histogram({100.0, 1000.0}, {5, 3, 2});
  h.name = "serve.red.total_us.predict.2xx";
  h.sum = 1234.5;
  snapshot.histograms.push_back(h);

  const std::string text = picp::telemetry::to_prometheus_text(snapshot);

  // Counter: HELP + TYPE + one sample.
  EXPECT_EQ(occurrences(text, "# HELP picp_serve_requests "), 1u);
  EXPECT_EQ(occurrences(text, "# TYPE picp_serve_requests counter"), 1u);
  EXPECT_NE(text.find("picp_serve_requests 42\n"), std::string::npos);

  // Gauge.
  EXPECT_EQ(occurrences(text, "# TYPE picp_serve_inflight gauge"), 1u);
  EXPECT_NE(text.find("picp_serve_inflight 3\n"), std::string::npos);

  // Histogram: cumulative buckets, +Inf equal to the total count, then
  // _sum and _count.
  const std::string family = "picp_serve_red_total_us_predict_2xx";
  EXPECT_EQ(occurrences(text, "# TYPE " + family + " histogram"), 1u);
  EXPECT_NE(text.find(family + "_bucket{le=\"100\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find(family + "_bucket{le=\"1000\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find(family + "_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find(family + "_sum 1234.5\n"), std::string::npos);
  EXPECT_NE(text.find(family + "_count 10\n"), std::string::npos);

  EXPECT_STREQ(picp::telemetry::prometheus_content_type(),
               "text/plain; version=0.0.4");
}

TEST(Prometheus, DuplicateFamiliesEmitOneHelpTypePair) {
  // Two registry names that collide after sanitization (possible only
  // through punctuation-only differences) must not produce duplicate
  // HELP/TYPE lines — scrapers reject that.
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"serve.requests", 1});
  snapshot.counters.push_back({"serve_requests", 2});
  const std::string text = picp::telemetry::to_prometheus_text(snapshot);
  EXPECT_EQ(occurrences(text, "# TYPE picp_serve_requests counter"), 1u);
}

// --- trace ids ---------------------------------------------------------------

TEST(TraceId, GeneratedIdsAreWellFormedAndDistinct) {
  const std::string a = generate_trace_id();
  const std::string b = generate_trace_id();
  ASSERT_EQ(a.size(), 18u);  // "p-" + 16 hex digits
  EXPECT_EQ(a.substr(0, 2), "p-");
  for (std::size_t i = 2; i < a.size(); ++i)
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(a[i]))) << a;
  EXPECT_NE(a, b);
}

TEST(TraceId, SanitizeHonorsWellFormedInboundIds) {
  EXPECT_EQ(sanitize_trace_id("abc-123.DEF_x"), "abc-123.DEF_x");
  EXPECT_EQ(sanitize_trace_id("p-0123456789abcdef"), "p-0123456789abcdef");
}

TEST(TraceId, SanitizeRegeneratesHostileIds) {
  // Empty, oversized, and control/space bytes must all be replaced by a
  // generated id so the access log stays one-line-per-request parseable.
  EXPECT_EQ(sanitize_trace_id("").substr(0, 2), "p-");
  EXPECT_EQ(sanitize_trace_id(std::string(65, 'a')).substr(0, 2), "p-");
  EXPECT_EQ(sanitize_trace_id("has space").substr(0, 2), "p-");
  EXPECT_EQ(sanitize_trace_id("newline\ninjection").substr(0, 2), "p-");
  EXPECT_EQ(sanitize_trace_id("quote\"break").substr(0, 2), "p-");
}

// --- exclusive-time stages ---------------------------------------------------

/// Fixture owning a manually-advanced clock shared by every trace it makes.
class RequestTraceTest : public ::testing::Test {
 protected:
  RequestTrace make_trace() {
    RequestTrace trace([this] { return now_; });
    trace.armed = true;
    return trace;
  }
  void advance_us(std::int64_t us) { now_ += std::chrono::microseconds(us); }

  std::chrono::steady_clock::time_point now_{};
};

TEST_F(RequestTraceTest, NestedStagesRecordExclusiveTime) {
  RequestTrace trace = make_trace();
  {
    const RequestTrace::Scope scope(&trace);
    const RequestTrace::Stage cache("cache");
    advance_us(5000);
    {
      const RequestTrace::Stage generate("generate");
      advance_us(20000);
    }
    advance_us(2000);
  }
  ASSERT_EQ(trace.stages().size(), 2u);
  // Inner stage closed first; order is completion order.
  EXPECT_STREQ(trace.stages()[0].name, "generate");
  EXPECT_DOUBLE_EQ(trace.stages()[0].dur_us, 20000.0);
  EXPECT_STREQ(trace.stages()[1].name, "cache");
  // "cache" excludes the nested 20 ms: 5 ms before + 2 ms after.
  EXPECT_DOUBLE_EQ(trace.stages()[1].dur_us, 7000.0);
}

TEST_F(RequestTraceTest, StagesAreNoOpsWithoutAnArmedCurrentTrace) {
  RequestTrace trace = make_trace();
  trace.armed = false;
  {
    const RequestTrace::Scope scope(&trace);
    EXPECT_EQ(RequestTrace::current(), nullptr);
    const RequestTrace::Stage stage("cache");
    advance_us(5000);
  }
  EXPECT_TRUE(trace.stages().empty());

  {
    // No scope at all: annotations must not crash.
    const RequestTrace::Stage stage("generate");
    RequestTrace::note_cache("hit");
    RequestTrace::note_deadline_stage("simulate");
  }
  EXPECT_TRUE(trace.stages().empty());
}

TEST_F(RequestTraceTest, CopyExecutionAdoptsLeaderStagesAndAnnotations) {
  RequestTrace leader = make_trace();
  {
    const RequestTrace::Scope scope(&leader);
    const RequestTrace::Stage stage("generate");
    advance_us(10000);
    RequestTrace::note_cache("miss");
  }
  leader.handler_us = 10000.0;
  leader.queue_wait_us = 123.0;

  RequestTrace member = make_trace();
  member.batch_wait_us = 777.0;
  member.copy_execution_from(leader);
  ASSERT_EQ(member.stages().size(), 1u);
  EXPECT_STREQ(member.stages()[0].name, "generate");
  EXPECT_STREQ(member.cache_tier, "miss");
  EXPECT_DOUBLE_EQ(member.handler_us, 10000.0);
  // The member keeps its own wait timeline.
  EXPECT_DOUBLE_EQ(member.batch_wait_us, 777.0);
}

TEST_F(RequestTraceTest, EmitSpansCoversRequestWaitsAndStages) {
  RequestTrace trace = make_trace();
  trace.arrived_us = trace.now_us();
  trace.dispatch_us = trace.arrived_us;
  {
    const RequestTrace::Scope scope(&trace);
    const RequestTrace::Stage stage("simulate");
    advance_us(4000);
  }
  trace.batch_wait_us = 0.0;
  trace.queue_wait_us = 1000.0;
  trace.handler_us = 4000.0;
  trace.total_us = 5000.0;

  picp::telemetry::SpanTracer tracer;
  trace.emit_spans(tracer);
  const auto spans = tracer.collect();
  bool saw_request = false, saw_queue = false, saw_stage = false;
  for (const auto& tagged : spans) {
    const std::string name = tagged.span.name;
    EXPECT_STREQ(tagged.span.category, "request");
    if (name == "request") {
      saw_request = true;
      EXPECT_DOUBLE_EQ(tagged.span.dur_us, 5000.0);
    }
    if (name == "queue") saw_queue = true;
    if (name == "simulate") saw_stage = true;
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_stage);
}

// --- access log --------------------------------------------------------------

RequestTrace traced_request(std::chrono::steady_clock::time_point* now) {
  RequestTrace trace([now] { return *now; });
  trace.armed = true;
  trace.id = "p-feedfacefeedface";
  trace.method = "POST";
  trace.path = "/v1/predict";
  trace.peer = "127.0.0.1:5555";
  trace.status = 200;
  trace.role = "leader";
  trace.batch_size = 3;
  trace.cache_tier = "miss";
  trace.batch_wait_us = 100.0;
  trace.queue_wait_us = 200.0;
  trace.handler_us = 3000.0;
  trace.total_us = 3300.0;
  return trace;
}

TEST(AccessLog, LineCarriesTheFullSchema) {
  std::chrono::steady_clock::time_point now{};
  RequestTrace trace = traced_request(&now);
  {
    const RequestTrace::Scope scope(&trace);
    {
      const RequestTrace::Stage stage("generate");
      now += std::chrono::microseconds(1000);
    }
    {
      // A repeated stage accumulates into one key instead of clobbering.
      const RequestTrace::Stage stage("generate");
      now += std::chrono::microseconds(500);
    }
  }

  const Json line = Json::parse(access_log_line(trace));
  ASSERT_TRUE(line.is_object());
  EXPECT_EQ(line.find("trace_id")->as_string(), "p-feedfacefeedface");
  EXPECT_EQ(line.find("peer")->as_string(), "127.0.0.1:5555");
  EXPECT_EQ(line.find("method")->as_string(), "POST");
  EXPECT_EQ(line.find("path")->as_string(), "/v1/predict");
  EXPECT_EQ(line.find("status")->as_int(), 200);
  EXPECT_EQ(line.find("batch_role")->as_string(), "leader");
  EXPECT_EQ(line.find("batch_size")->as_uint(), 3u);
  EXPECT_EQ(line.find("cache")->as_string(), "miss");
  EXPECT_EQ(line.find("deadline_stage")->as_string(), "");
  EXPECT_DOUBLE_EQ(line.find("batch_wait_us")->as_double(), 100.0);
  EXPECT_DOUBLE_EQ(line.find("queue_us")->as_double(), 200.0);
  EXPECT_DOUBLE_EQ(line.find("handler_us")->as_double(), 3000.0);
  EXPECT_DOUBLE_EQ(line.find("total_us")->as_double(), 3300.0);
  ASSERT_NE(line.find("ts"), nullptr);
  const Json* stages = line.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_DOUBLE_EQ(stages->find("generate")->as_double(), 1500.0);
}

TEST(AccessLog, RotatesAtTheByteBudget) {
  const std::string path =
      testing::TempDir() + "/picp_access_" + std::to_string(::getpid()) +
      ".ndjson";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());

  std::chrono::steady_clock::time_point now{};
  {
    AccessLog log({path, /*max_bytes=*/512});
    const RequestTrace trace = traced_request(&now);
    for (int i = 0; i < 8; ++i) log.write(trace);
    EXPECT_EQ(log.lines_written(), 8u);
  }

  // Every line is ~300 bytes, so 8 writes crossed the 512-byte budget at
  // least once: the rotated file exists and every surviving line (live +
  // rotated) is valid NDJSON. Early rotations overwrite `.1`, so only the
  // most recent generations survive — by design.
  std::size_t lines = 0;
  for (const std::string& name : {path + ".1", path}) {
    std::FILE* file = std::fopen(name.c_str(), "r");
    ASSERT_NE(file, nullptr) << name << " missing — rotation never happened";
    char buffer[4096];
    while (std::fgets(buffer, sizeof buffer, file) != nullptr) {
      const Json parsed = Json::parse(buffer);
      EXPECT_TRUE(parsed.is_object());
      ++lines;
    }
    std::fclose(file);
  }
  EXPECT_GT(lines, 0u);

  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(AccessLog, ThrowsWhenThePathCannotOpen) {
  EXPECT_THROW((AccessLog({"/nonexistent-dir/access.ndjson", 1024})),
               picp::Error);
}

}  // namespace
}  // namespace picp::serve
