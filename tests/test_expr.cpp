#include "model/expr.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"

namespace picp {
namespace {

Expr parse(const std::string& tokens) { return Expr::from_tokens(tokens); }

TEST(ExprTest, ConstantsAndVariables) {
  EXPECT_DOUBLE_EQ(Expr::constant(3.5).evaluate({}), 3.5);
  const std::array<double, 2> x = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(Expr::variable(0).evaluate(x), 10.0);
  EXPECT_DOUBLE_EQ(Expr::variable(1).evaluate(x), 20.0);
}

TEST(ExprTest, OutOfRangeVariableIsZero) {
  const std::array<double, 1> x = {10.0};
  EXPECT_DOUBLE_EQ(Expr::variable(5).evaluate(x), 0.0);
}

TEST(ExprTest, Arithmetic) {
  const std::array<double, 2> x = {6.0, 2.0};
  EXPECT_DOUBLE_EQ(parse("add v0 v1").evaluate(x), 8.0);
  EXPECT_DOUBLE_EQ(parse("sub v0 v1").evaluate(x), 4.0);
  EXPECT_DOUBLE_EQ(parse("mul v0 v1").evaluate(x), 12.0);
  EXPECT_DOUBLE_EQ(parse("div v0 v1").evaluate(x), 3.0);
  EXPECT_DOUBLE_EQ(parse("sqrt v0 ").evaluate(std::array<double, 1>{16.0}),
                   4.0);
  EXPECT_DOUBLE_EQ(parse("sq v1").evaluate(x), 4.0);
}

TEST(ExprTest, NestedExpression) {
  // (x0 + 2) * sqrt(x1)
  const Expr e = parse("mul add v0 c2 sqrt v1");
  const std::array<double, 2> x = {3.0, 9.0};
  EXPECT_DOUBLE_EQ(e.evaluate(x), 15.0);
}

TEST(ExprTest, ProtectedDivisionByZero) {
  const std::array<double, 2> x = {5.0, 0.0};
  EXPECT_DOUBLE_EQ(parse("div v0 v1").evaluate(x), 5.0);  // a when |b| tiny
}

TEST(ExprTest, ProtectedSqrtOfNegative) {
  EXPECT_DOUBLE_EQ(parse("sqrt c-9").evaluate({}), 3.0);
}

TEST(ExprTest, SubtreeEnd) {
  const Expr e = parse("mul add v0 c2 sqrt v1");
  // nodes: [mul, add, v0, c2, sqrt, v1]
  EXPECT_EQ(e.subtree_end(0), 6u);
  EXPECT_EQ(e.subtree_end(1), 4u);  // add v0 c2
  EXPECT_EQ(e.subtree_end(2), 3u);  // v0
  EXPECT_EQ(e.subtree_end(4), 6u);  // sqrt v1
}

TEST(ExprTest, Depth) {
  EXPECT_EQ(Expr::constant(1.0).depth(), 1);
  EXPECT_EQ(parse("add v0 v1").depth(), 2);
  EXPECT_EQ(parse("mul add v0 c2 sqrt v1").depth(), 3);
  EXPECT_EQ(parse("sqrt sqrt sqrt v0").depth(), 4);
}

TEST(ExprTest, TokensRoundTrip) {
  for (const std::string tokens :
       {"add v0 v1", "mul add v0 c2 sqrt v1", "c3.25", "v7",
        "div sq v0 add c1 v1"}) {
    const Expr e = parse(tokens);
    const Expr back = Expr::from_tokens(e.to_tokens());
    ASSERT_EQ(e.size(), back.size());
    const std::array<double, 8> x = {1.5, 2.5, 3, 4, 5, 6, 7, 8.5};
    EXPECT_DOUBLE_EQ(e.evaluate(x), back.evaluate(x));
  }
}

TEST(ExprTest, ToStringUsesFeatureNames) {
  const Expr e = parse("add v0 mul c2 v1");
  const std::vector<std::string> names = {"np", "ngp"};
  const std::string s = e.to_string(names);
  EXPECT_NE(s.find("np"), std::string::npos);
  EXPECT_NE(s.find("ngp"), std::string::npos);
}

TEST(ExprTest, MalformedTokensThrow) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("bogus"), Error);
  EXPECT_THROW(parse("add v0"), Error);      // missing operand
  EXPECT_THROW(parse("add v0 v1 v2"), Error);  // trailing junk
}

TEST(ExprTest, EmptyEvaluationThrows) {
  const Expr e;
  EXPECT_THROW(e.evaluate({}), Error);
}

}  // namespace
}  // namespace picp
