#include "workload/workload_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace picp {
namespace {

CompMatrix sample_matrix() {
  // 4 ranks, 3 intervals.
  CompMatrix m(4, 3);
  m.set(0, 0, 10);
  m.set(1, 0, 0);
  m.set(2, 0, 5);
  m.set(3, 0, 0);
  m.set(0, 1, 8);
  m.set(1, 1, 2);
  m.set(2, 1, 5);
  m.set(0, 2, 6);
  m.set(2, 2, 9);
  return m;
}

TEST(Utilization, CountsEverAndMeanActive) {
  const UtilizationStats stats = utilization(sample_matrix());
  EXPECT_EQ(stats.num_ranks, 4);
  EXPECT_EQ(stats.ever_active, 3);  // rank 3 never has particles
  EXPECT_DOUBLE_EQ(stats.ever_active_fraction, 0.75);
  // Active fractions: 2/4, 3/4, 2/4 → mean 7/12.
  EXPECT_NEAR(stats.mean_active_fraction, 7.0 / 12.0, 1e-12);
  EXPECT_EQ(stats.peak_load, 10);
}

TEST(Utilization, EmptyMatrix) {
  const CompMatrix m(4, 0);
  const UtilizationStats stats = utilization(m);
  EXPECT_EQ(stats.ever_active, 0);
  EXPECT_DOUBLE_EQ(stats.mean_active_fraction, 0.0);
}

TEST(PeakPerInterval, MatchesIntervalMax) {
  const auto peaks = peak_per_interval(sample_matrix());
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0], 10);
  EXPECT_EQ(peaks[1], 8);
  EXPECT_EQ(peaks[2], 9);
}

TEST(ImbalancePerInterval, MaxOverMean) {
  const auto imb = imbalance_per_interval(sample_matrix());
  ASSERT_EQ(imb.size(), 3u);
  // Interval 0: total 15, mean 3.75, max 10 → 2.666...
  EXPECT_NEAR(imb[0], 10.0 / 3.75, 1e-12);
}

TEST(ImbalancePerInterval, EmptyIntervalIsZero) {
  CompMatrix m(2, 1);
  const auto imb = imbalance_per_interval(m);
  EXPECT_DOUBLE_EQ(imb[0], 0.0);
}

TEST(ActivePerInterval, Counts) {
  const auto active = active_per_interval(sample_matrix());
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0], 2);
  EXPECT_EQ(active[1], 3);
  EXPECT_EQ(active[2], 2);
}

TEST(AsciiHeatmap, DimensionsAndContent) {
  const std::string map = ascii_heatmap(sample_matrix(), 3, 4);
  // 4 rank rows (ranks <= height) x 3 interval columns.
  std::istringstream in(map);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.size(), 3u);
    ++rows;
  }
  EXPECT_EQ(rows, 4);
  // Rank 3 row must be all blanks (never active).
  EXPECT_NE(map.find("   "), std::string::npos);
  // The peak cell must use the hottest ramp character.
  EXPECT_NE(map.find('@'), std::string::npos);
}

TEST(AsciiHeatmap, DownsamplesLargeMatrices) {
  CompMatrix m(100, 200);
  for (std::size_t t = 0; t < 200; ++t)
    for (Rank r = 0; r < 100; ++r) m.set(r, t, r + static_cast<Rank>(t));
  const std::string map = ascii_heatmap(m, 10, 5);
  std::istringstream in(map);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.size(), 10u);
    ++rows;
  }
  EXPECT_EQ(rows, 5);
}

TEST(AsciiHeatmap, EmptyMatrix) {
  const CompMatrix m(2, 0);
  EXPECT_EQ(ascii_heatmap(m), "(empty)\n");
}

}  // namespace
}  // namespace picp
