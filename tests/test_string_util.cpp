#include "util/string_util.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nhello\r "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(trim("  a b  c "), "a b  c");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("HeLLo"), "hello");
  EXPECT_EQ(to_lower("ABC123xyz"), "abc123xyz");
}

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto fields = split(",a,,b,", ',');
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[4], "");
}

TEST(Split, NoDelimiter) {
  const auto fields = split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ParseInt, ValidValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("  123  "), 123);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_THROW(parse_int("12x"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("1.5"), Error);
  EXPECT_THROW(parse_int("abc"), Error);
}

TEST(ParseDouble, ValidValues) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e-3"), -2e-3);
  EXPECT_DOUBLE_EQ(parse_double(" 0.0 "), 0.0);
  EXPECT_DOUBLE_EQ(parse_double("1e10"), 1e10);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("x"), Error);
  EXPECT_THROW(parse_double(""), Error);
  EXPECT_THROW(parse_double("1.5y"), Error);
}

TEST(ParseBool, Synonyms) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("TRUE"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("yes"));
  EXPECT_TRUE(parse_bool("on"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("no"));
  EXPECT_FALSE(parse_bool("off"));
}

TEST(ParseBool, RejectsGarbage) {
  EXPECT_THROW(parse_bool("maybe"), Error);
  EXPECT_THROW(parse_bool(""), Error);
}

}  // namespace
}  // namespace picp
