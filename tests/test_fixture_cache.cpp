#include "support/fixture_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/atomic_file.hpp"

namespace picp::testing {
namespace {

namespace fs = std::filesystem;

class FixtureCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("picp_fixture_cache_test_" +
             std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

void write_payload(const std::string& path, const std::string& payload) {
  atomic_write_file(path, payload.data(), payload.size());
}

TEST_F(FixtureCacheTest, GeneratesOnceThenReuses) {
  FixtureCache cache(root_);
  int calls = 0;
  const auto generate = [&calls](const std::string& path) {
    ++calls;
    write_payload(path, "payload");
  };

  const std::string first = cache.ensure("trace", 0xabcdu, ".bin", generate);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(fs::exists(first));
  EXPECT_EQ(FixtureCache::generations(first), 1u);
  EXPECT_EQ(FixtureCache::hits(first), 0u);

  const std::string second = cache.ensure("trace", 0xabcdu, ".bin", generate);
  EXPECT_EQ(second, first);
  EXPECT_EQ(calls, 1) << "cached artifact must not be regenerated";
  EXPECT_EQ(FixtureCache::generations(first), 1u);
  EXPECT_EQ(FixtureCache::hits(first), 1u);
}

TEST_F(FixtureCacheTest, FingerprintAddressesContent) {
  FixtureCache cache(root_);
  const auto generate_a = [](const std::string& path) {
    write_payload(path, "A");
  };
  const auto generate_b = [](const std::string& path) {
    write_payload(path, "B");
  };
  const std::string a = cache.ensure("trace", 1, ".bin", generate_a);
  const std::string b = cache.ensure("trace", 2, ".bin", generate_b);
  EXPECT_NE(a, b) << "different fingerprints must not collide";

  std::ifstream in(b);
  std::string payload;
  in >> payload;
  EXPECT_EQ(payload, "B");
  EXPECT_NE(a.find("0000000000000001"), std::string::npos) << a;
}

TEST_F(FixtureCacheTest, SeparateCacheInstancesShareArtifacts) {
  int calls = 0;
  const auto generate = [&calls](const std::string& path) {
    ++calls;
    write_payload(path, "shared");
  };
  const std::string first =
      FixtureCache(root_).ensure("model", 7, ".txt", generate);
  const std::string second =
      FixtureCache(root_).ensure("model", 7, ".txt", generate);
  EXPECT_EQ(first, second);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(FixtureCache::hits(first), 1u);
}

TEST_F(FixtureCacheTest, FailedGeneratorDoesNotPoisonCache) {
  FixtureCache cache(root_);
  EXPECT_THROW(cache.ensure("trace", 3, ".bin",
                            [](const std::string&) {
                              // produces nothing
                            }),
               std::runtime_error);
  // A later, working generator still runs.
  const std::string path = cache.ensure(
      "trace", 3, ".bin",
      [](const std::string& p) { write_payload(p, "ok"); });
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(FixtureCache::generations(path), 1u);
}

TEST_F(FixtureCacheTest, ConcurrentEnsureGeneratesExactlyOnce) {
  std::atomic<int> calls{0};
  const auto worker = [&] {
    FixtureCache cache(root_);
    cache.ensure("trace", 9, ".bin", [&calls](const std::string& path) {
      ++calls;
      write_payload(path, "once");
    });
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(calls.load(), 1);
}

TEST(FixtureRoot, HonorsEnvironmentOverride) {
  const char* previous = std::getenv("PICP_FIXTURE_DIR");
  const std::string saved = previous != nullptr ? previous : "";
  ::setenv("PICP_FIXTURE_DIR", "/tmp/picp_fixture_env_test", 1);
  EXPECT_EQ(fixture_root(), fs::path("/tmp/picp_fixture_env_test"));
  if (previous != nullptr)
    ::setenv("PICP_FIXTURE_DIR", saved.c_str(), 1);
  else
    ::unsetenv("PICP_FIXTURE_DIR");
}

}  // namespace
}  // namespace picp::testing
