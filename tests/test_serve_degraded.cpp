// In-process tests of the service layer's robustness contract (PR 7):
// per-request deadline propagation (504 + stage telemetry), degraded-mode
// stale serving (X-Picp-Degraded), and the /v1/failpoints admin endpoint's
// gating (404 when disabled, loopback-only when enabled). Drives
// PredictionService::handle() directly — no sockets — against a miniature
// trace generated once per process.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "picsim/sim_driver.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "util/failpoint.hpp"

namespace picp::serve {
namespace {

/// One miniature trace for every test in this file (generation costs more
/// than every request below combined). Leaked on purpose: process-lifetime.
const std::string& shared_trace_path() {
  static const std::string* path = [] {
    SimConfig cfg;
    cfg.nelx = 8;
    cfg.nely = 8;
    cfg.nelz = 16;
    cfg.bed.num_particles = 1500;
    cfg.num_iterations = 100;
    cfg.sample_every = 50;
    cfg.num_ranks = 8;
    cfg.filter_size = 0.08;
    // PID-unique: ctest runs each TEST as its own process, and two
    // processes regenerating one shared path would race reader vs writer.
    const auto* p = new std::string(testing::TempDir() +
                                    "/picp_serve_degraded_" +
                                    std::to_string(::getpid()) + ".trace");
    SimDriver driver(cfg);
    driver.run(*p);
    return p;
  }();
  return *path;
}

ServiceConfig tiny_service_config() {
  ServiceConfig config;
  config.trace_path = shared_trace_path();
  config.nelx = 8;
  config.nely = 8;
  config.nelz = 16;
  // Capacity 1 on both tiers: the second distinct key evicts the first,
  // which is exactly the shape the degraded-mode tests need.
  config.workload_cache_capacity = 1;
  config.response_cache_capacity = 1;
  return config;
}

HttpRequest post(const std::string& target, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = body;
  return request;
}

class ServeDegradedTest : public testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(ServeDegradedTest, WorkloadServesAndReplaysByteIdentically) {
  PredictionService service(tiny_service_config());
  const HttpResponse miss =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  ASSERT_EQ(miss.status, 200) << miss.body;
  ASSERT_NE(miss.header("x-picp-cache"), nullptr);
  EXPECT_EQ(*miss.header("x-picp-cache"), "miss");
  EXPECT_EQ(miss.header("x-picp-degraded"), nullptr);

  const HttpResponse hit =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  ASSERT_EQ(hit.status, 200);
  EXPECT_EQ(*hit.header("x-picp-cache"), "hit");
  EXPECT_EQ(hit.body, miss.body) << "cached replay must be byte-identical";
}

TEST_F(ServeDegradedTest, ExpiredDeadlineReturns504WithStage) {
  PredictionService service(tiny_service_config());
  // The injected delay burns the whole budget before the first pipeline
  // stage boundary, so the 504 is deterministic, not a timing race.
  failpoint::arm("serve.generate=delay(80)");
  HttpRequest request = post("/v1/workload", "{\"ranks\": [4]}");
  request.headers.emplace_back("x-picp-deadline-ms", "20");
  const HttpResponse response = service.handle(request);
  EXPECT_EQ(response.status, 504) << response.body;
  ASSERT_NE(response.header("x-picp-deadline-stage"), nullptr);
  EXPECT_EQ(*response.header("x-picp-deadline-stage"), "generate.partition");
  EXPECT_NE(response.body.find("deadline exceeded"), std::string::npos);
}

TEST_F(ServeDegradedTest, GenerousDeadlineDoesNotDisturbTheRequest) {
  PredictionService service(tiny_service_config());
  HttpRequest request = post("/v1/workload", "{\"ranks\": [4]}");
  request.headers.emplace_back("x-picp-deadline-ms", "600000");
  EXPECT_EQ(service.handle(request).status, 200);
}

TEST_F(ServeDegradedTest, MalformedDeadlineHeaderIsA400) {
  PredictionService service(tiny_service_config());
  for (const char* bad : {"soon", "-5", "0"}) {
    HttpRequest request = post("/v1/workload", "{\"ranks\": [4]}");
    request.headers.emplace_back("x-picp-deadline-ms", bad);
    EXPECT_EQ(service.handle(request).status, 400) << bad;
  }
}

TEST_F(ServeDegradedTest, TransientFailureServesStaleWhenAllowed) {
  ServiceConfig config = tiny_service_config();
  config.allow_stale = true;
  PredictionService service(config);

  // Warm ranks=4, then evict it from both capacity-1 tiers with ranks=2.
  // The stale tier keeps the evicted response as the last good value.
  const HttpResponse good =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  ASSERT_EQ(good.status, 200);
  ASSERT_EQ(service.handle(post("/v1/workload", "{\"ranks\": [2]}")).status,
            200);

  failpoint::arm("serve.generate=error");
  const HttpResponse degraded =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  EXPECT_EQ(degraded.status, 200) << degraded.body;
  ASSERT_NE(degraded.header("x-picp-degraded"), nullptr);
  EXPECT_EQ(*degraded.header("x-picp-degraded"), "stale");
  EXPECT_EQ(degraded.body, good.body)
      << "degraded mode must replay the last good artifact byte-for-byte";

  // Disarmed, the next request regenerates fresh — no stale lock-in.
  failpoint::disarm_all();
  const HttpResponse healed =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  EXPECT_EQ(healed.status, 200);
  EXPECT_EQ(healed.header("x-picp-degraded"), nullptr);
  EXPECT_EQ(healed.body, good.body);
}

TEST_F(ServeDegradedTest, TransientFailureWithoutStalePermissionIsA500) {
  PredictionService service(tiny_service_config());  // allow_stale = false
  ASSERT_EQ(service.handle(post("/v1/workload", "{\"ranks\": [4]}")).status,
            200);
  ASSERT_EQ(service.handle(post("/v1/workload", "{\"ranks\": [2]}")).status,
            200);
  failpoint::arm("serve.generate=error");
  const HttpResponse response =
      service.handle(post("/v1/workload", "{\"ranks\": [4]}"));
  EXPECT_EQ(response.status, 500);
  EXPECT_EQ(response.header("x-picp-degraded"), nullptr);
}

TEST_F(ServeDegradedTest, FailpointsEndpointIs404WhenDisabled) {
  PredictionService service(tiny_service_config());
  HttpRequest request;
  request.method = "GET";
  request.target = "/v1/failpoints";
  request.from_loopback = true;  // even loopback peers see nothing
  EXPECT_EQ(service.handle(request).status, 404);
}

TEST_F(ServeDegradedTest, FailpointsEndpointIsLoopbackOnly) {
  ServiceConfig config = tiny_service_config();
  config.enable_failpoints = true;
  PredictionService service(config);
  HttpRequest request;
  request.method = "GET";
  request.target = "/v1/failpoints";
  request.from_loopback = false;
  EXPECT_EQ(service.handle(request).status, 403);
}

TEST_F(ServeDegradedTest, FailpointsEndpointArmsListsAndDisarms) {
  ServiceConfig config = tiny_service_config();
  config.enable_failpoints = true;
  PredictionService service(config);

  HttpRequest arm = post("/v1/failpoints",
                         "{\"arm\": \"serve.generate=error:times1\"}");
  arm.from_loopback = true;
  const HttpResponse armed = service.handle(arm);
  ASSERT_EQ(armed.status, 200) << armed.body;
  EXPECT_NE(armed.body.find("serve.generate=error:times1"),
            std::string::npos);

  HttpRequest list;
  list.method = "GET";
  list.target = "/v1/failpoints";
  list.from_loopback = true;
  EXPECT_NE(service.handle(list).body.find("serve.generate"),
            std::string::npos);

  // The armed failpoint really bites the serving path once.
  EXPECT_EQ(service.handle(post("/v1/workload", "{\"ranks\": [4]}")).status,
            500);
  EXPECT_EQ(service.handle(post("/v1/workload", "{\"ranks\": [4]}")).status,
            200);

  HttpRequest disarm = post("/v1/failpoints", "{\"disarm_all\": true}");
  disarm.from_loopback = true;
  EXPECT_EQ(service.handle(disarm).status, 200);
  EXPECT_TRUE(failpoint::list().empty());

  HttpRequest bad = post("/v1/failpoints", "{\"arm\": \"not a spec\"}");
  bad.from_loopback = true;
  EXPECT_EQ(service.handle(bad).status, 400);
}

}  // namespace
}  // namespace picp::serve
