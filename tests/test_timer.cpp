// Stopwatch / TimeAccumulator / ScopedTimer — wall + thread-CPU timing and
// the previously untested reset() paths.

#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace picp {
namespace {

/// Burn CPU until the thread has consumed at least `seconds` of CPU time.
/// Returns the work sink so the loop cannot be optimized away.
volatile double g_sink = 0.0;
void burn_cpu(double seconds) {
  const double start = detail::thread_cpu_now();
  double x = 1.0;
  while (detail::thread_cpu_now() - start < seconds) {
    for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 1e-9;
  }
  g_sink = x;
}

TEST(Stopwatch, MeasuresWallTime) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.seconds(), 0.004);
  // Separate clock reads, so only the units can be asserted exactly.
  EXPECT_GE(watch.milliseconds(), 4.0);
  EXPECT_GE(watch.microseconds(), 4000.0);
}

TEST(Stopwatch, CpuSecondsTracksWorkNotSleep) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Sleeping burns wall time but (almost) no CPU time.
  EXPECT_GE(watch.seconds(), 0.015);
  EXPECT_LT(watch.cpu_seconds(), watch.seconds());

  const Stopwatch busy;
  burn_cpu(0.01);
  EXPECT_GE(busy.cpu_seconds(), 0.009);
}

TEST(Stopwatch, ResetRestartsBothClocks) {
  Stopwatch watch;
  burn_cpu(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double wall_before = watch.seconds();
  const double cpu_before = watch.cpu_seconds();
  EXPECT_GE(wall_before, 0.009);
  EXPECT_GE(cpu_before, 0.004);

  watch.reset();
  // Both windows restart: immediately after reset the elapsed times must be
  // far below what had accumulated.
  EXPECT_LT(watch.seconds(), wall_before / 2);
  EXPECT_LT(watch.cpu_seconds(), cpu_before / 2);
}

TEST(TimeAccumulator, AccumulatesWallAndCpu) {
  TimeAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_seconds(), 0.0);

  acc.add(1.0, 0.5);
  acc.add(3.0, 1.5);
  acc.add(2.0);  // cpu defaults to 0 — wall-only call sites stay valid
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(acc.cpu_total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(acc.mean_seconds(), 2.0);
}

TEST(TimeAccumulator, ResetClearsEverything) {
  TimeAccumulator acc;
  acc.add(4.0, 2.0);
  acc.reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.cpu_total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_seconds(), 0.0);
}

TEST(ScopedTimer, AddsWallAndCpuOnDestruction) {
  TimeAccumulator acc;
  {
    const ScopedTimer timer(acc);
    burn_cpu(0.01);
  }
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_GE(acc.total_seconds(), 0.009);
  EXPECT_GE(acc.cpu_total_seconds(), 0.009);
  // CPU time cannot exceed single-thread wall time by more than clock slop.
  EXPECT_LE(acc.cpu_total_seconds(), acc.total_seconds() + 0.005);
}

}  // namespace
}  // namespace picp
