#include "geom/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

TEST(Hilbert, RoundTripSmall) {
  const int bits = 3;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z) {
        const std::uint64_t h = hilbert_index_3d(x, y, z, bits);
        std::uint32_t rx = 0, ry = 0, rz = 0;
        hilbert_coords_3d(h, bits, rx, ry, rz);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
        EXPECT_EQ(rz, z);
      }
}

TEST(Hilbert, Bijective) {
  const int bits = 3;
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      for (std::uint32_t z = 0; z < 8; ++z)
        seen.insert(hilbert_index_3d(x, y, z, bits));
  EXPECT_EQ(seen.size(), 512u);
  EXPECT_EQ(*seen.rbegin(), 511u);  // indices are exactly [0, 8^3)
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells) {
  // The defining Hilbert property: consecutive curve positions differ by
  // exactly one step along exactly one axis.
  const int bits = 4;
  std::uint32_t px = 0, py = 0, pz = 0;
  hilbert_coords_3d(0, bits, px, py, pz);
  for (std::uint64_t h = 1; h < (1u << (3 * bits)); ++h) {
    std::uint32_t x = 0, y = 0, z = 0;
    hilbert_coords_3d(h, bits, x, y, z);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py)) +
                          std::abs(static_cast<int>(z) - static_cast<int>(pz));
    ASSERT_EQ(manhattan, 1) << "at h=" << h;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(Hilbert, RoundTripRandomLargeBits) {
  Xoshiro256 rng(99);
  const int bits = 16;
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_below(1u << bits));
    const auto y = static_cast<std::uint32_t>(rng.uniform_below(1u << bits));
    const auto z = static_cast<std::uint32_t>(rng.uniform_below(1u << bits));
    const std::uint64_t h = hilbert_index_3d(x, y, z, bits);
    std::uint32_t rx = 0, ry = 0, rz = 0;
    hilbert_coords_3d(h, bits, rx, ry, rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(Hilbert, RejectsBadArguments) {
  EXPECT_THROW(hilbert_index_3d(0, 0, 0, 0), Error);
  EXPECT_THROW(hilbert_index_3d(0, 0, 0, 22), Error);
  EXPECT_THROW(hilbert_index_3d(8, 0, 0, 3), Error);  // exceeds bit width
  std::uint32_t x, y, z;
  EXPECT_THROW(hilbert_coords_3d(0, 0, x, y, z), Error);
}

}  // namespace
}  // namespace picp
