#include "model/linear.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

TEST(FitLinear, RecoversExactLine) {
  Dataset data({"x"});
  for (double x = 0; x < 10; ++x)
    data.add(std::array<double, 1>{x}, 3.0 * x + 2.0);
  const LinearModel model = fit_linear(data);
  EXPECT_NEAR(model.intercept(), 2.0, 1e-9);
  ASSERT_EQ(model.coefficients().size(), 1u);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 1e-9);
  EXPECT_NEAR(model.evaluate(std::array<double, 1>{100.0}), 302.0, 1e-6);
}

TEST(FitLinear, RecoversMultiFeaturePlane) {
  Dataset data({"a", "b", "c"});
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 100);
    const double b = rng.uniform(0, 10);
    const double c = rng.uniform(0, 1);
    data.add(std::array<double, 3>{a, b, c}, 0.5 * a - 2.0 * b + 7.0 * c + 4.0);
  }
  const LinearModel model = fit_linear(data);
  EXPECT_NEAR(model.coefficients()[0], 0.5, 1e-4);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 1e-4);
  EXPECT_NEAR(model.coefficients()[2], 7.0, 1e-4);
  EXPECT_NEAR(model.intercept(), 4.0, 1e-3);
}

TEST(FitLinear, NoisyDataStillClose) {
  Dataset data({"x"});
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 1000);
    data.add(std::array<double, 1>{x}, 1e-6 * x + 5e-5 + rng.normal() * 1e-6);
  }
  const LinearModel model = fit_linear(data);
  EXPECT_NEAR(model.coefficients()[0], 1e-6, 5e-8);
  EXPECT_NEAR(model.intercept(), 5e-5, 5e-7);
}

TEST(FitLinear, ConstantFeatureDoesNotBlowUp) {
  // Rank-deficient design: ridge damping must keep this solvable.
  Dataset data({"x", "const"});
  for (double x = 0; x < 10; ++x)
    data.add(std::array<double, 2>{x, 1.0}, 2.0 * x + 3.0);
  const LinearModel model = fit_linear(data);
  // The prediction must still be exact even if the split between intercept
  // and constant-feature coefficient is arbitrary.
  EXPECT_NEAR(model.evaluate(std::array<double, 2>{5.0, 1.0}), 13.0, 1e-6);
}

TEST(FitLinear, EmptyDatasetThrows) {
  Dataset data({"x"});
  EXPECT_THROW(fit_linear(data), Error);
}

TEST(MonomialExponents, CountsMatchStarsAndBars) {
  // #monomials of total degree <= d in k vars = C(k + d, d).
  EXPECT_EQ(monomial_exponents(1, 3).size(), 4u);   // 1, x, x², x³
  EXPECT_EQ(monomial_exponents(2, 2).size(), 6u);   // C(4,2)
  EXPECT_EQ(monomial_exponents(3, 3).size(), 20u);  // C(6,3)
  EXPECT_EQ(monomial_exponents(2, 0).size(), 1u);   // constant only
}

TEST(MonomialExponents, ConstantTermFirst) {
  const auto exps = monomial_exponents(2, 2);
  EXPECT_EQ(exps[0], (std::vector<int>{0, 0}));
}

TEST(FitPolynomial, RecoversQuadratic) {
  Dataset data({"x"});
  for (double x = -5; x <= 5; x += 0.5)
    data.add(std::array<double, 1>{x}, 2.0 * x * x - 3.0 * x + 1.0);
  const PolynomialModel model = fit_polynomial(data, 2);
  for (double x = -4; x <= 4; x += 1.0)
    EXPECT_NEAR(model.evaluate(std::array<double, 1>{x}),
                2.0 * x * x - 3.0 * x + 1.0, 1e-7);
}

TEST(FitPolynomial, RecoversCrossTerm) {
  Dataset data({"a", "b"});
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(0, 5);
    const double b = rng.uniform(0, 5);
    data.add(std::array<double, 2>{a, b}, 1.5 * a * b + 0.5);
  }
  const PolynomialModel model = fit_polynomial(data, 2);
  EXPECT_NEAR(model.evaluate(std::array<double, 2>{2.0, 3.0}),
              1.5 * 6.0 + 0.5, 1e-6);
}

TEST(Models, DescribeAndSerializeNonEmpty) {
  Dataset data({"np"});
  for (double x = 0; x < 5; ++x)
    data.add(std::array<double, 1>{x}, 2.0 * x);
  const LinearModel lm = fit_linear(data);
  EXPECT_NE(lm.describe().find("np"), std::string::npos);
  EXPECT_EQ(lm.serialize().rfind("linear ", 0), 0u);
  const PolynomialModel pm = fit_polynomial(data, 2);
  EXPECT_EQ(pm.serialize().rfind("poly ", 0), 0u);
}

TEST(Models, CloneIsIndependentCopy) {
  Dataset data({"x"});
  for (double x = 0; x < 5; ++x)
    data.add(std::array<double, 1>{x}, 2.0 * x);
  const LinearModel lm = fit_linear(data);
  const auto copy = lm.clone();
  EXPECT_DOUBLE_EQ(copy->evaluate(std::array<double, 1>{3.0}),
                   lm.evaluate(std::array<double, 1>{3.0}));
}

TEST(LinearModel, FeatureCountMismatchThrows) {
  const LinearModel model({1.0}, 0.0, {"x"});
  EXPECT_THROW(model.evaluate(std::array<double, 2>{1.0, 2.0}), Error);
}

}  // namespace
}  // namespace picp
