// Unit tests for the failpoint fault-injection subsystem: spec grammar,
// trigger semantics (1inN determinism, afterN, timesN), arming sources
// (in-process, environment), counters, and the crash action's hard-exit
// contract. Every test disarms on teardown — failpoint state is process
// global and other suites in this binary run with it disarmed.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp {
namespace {

namespace fs = std::filesystem;

class FailpointTest : public testing::Test {
 protected:
  void TearDown() override {
    failpoint::disarm_all();
    ::unsetenv("PICP_FAILPOINTS");
    ::unsetenv("PICP_FAILPOINTS_SEED");
  }
};

TEST_F(FailpointTest, DisarmedSiteIsInertAndFree) {
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_FALSE(failpoint::fire("test.nothing").has_value());
  EXPECT_NO_THROW(failpoint::inject("test.nothing"));
  EXPECT_TRUE(failpoint::list().empty());
}

TEST_F(FailpointTest, ErrorActionFiresEveryHitAndCounts) {
  failpoint::arm("test.err=error");
  EXPECT_TRUE(failpoint::any_armed());
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(failpoint::inject("test.err"), Error);
  // Other sites stay silent even while something is armed.
  EXPECT_NO_THROW(failpoint::inject("test.other"));

  const auto infos = failpoint::list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].site, "test.err");
  EXPECT_EQ(infos[0].spec, "test.err=error");
  EXPECT_EQ(infos[0].hits, 3u);
  EXPECT_EQ(infos[0].fires, 3u);
}

TEST_F(FailpointTest, ErrnoActionSetsErrnoAndNamesIt) {
  failpoint::arm("test.enospc=errno(28)");  // ENOSPC
  errno = 0;
  try {
    failpoint::inject("test.enospc");
    FAIL() << "errno action must throw";
  } catch (const Error& e) {
    EXPECT_EQ(errno, 28);
    EXPECT_NE(std::string(e.what()).find("test.enospc"), std::string::npos);
  }
}

TEST_F(FailpointTest, DelayActionSleepsWithoutThrowing) {
  failpoint::arm("test.slow=delay(1)");
  EXPECT_NO_THROW(failpoint::inject("test.slow"));
  EXPECT_EQ(failpoint::list()[0].fires, 1u);
}

TEST_F(FailpointTest, AfterTriggerStaysSilentThenFires) {
  failpoint::arm("test.after=error:after2");
  EXPECT_NO_THROW(failpoint::inject("test.after"));
  EXPECT_NO_THROW(failpoint::inject("test.after"));
  EXPECT_THROW(failpoint::inject("test.after"), Error);
  const auto infos = failpoint::list();
  EXPECT_EQ(infos[0].hits, 3u);
  EXPECT_EQ(infos[0].fires, 1u);
}

TEST_F(FailpointTest, TimesTriggerGoesInertAfterBudget) {
  failpoint::arm("test.times=error:times2");
  EXPECT_THROW(failpoint::inject("test.times"), Error);
  EXPECT_THROW(failpoint::inject("test.times"), Error);
  EXPECT_NO_THROW(failpoint::inject("test.times"));
  EXPECT_NO_THROW(failpoint::inject("test.times"));
  EXPECT_EQ(failpoint::list()[0].fires, 2u);
}

TEST_F(FailpointTest, CombinedTriggersAndTogether) {
  // after1 + times1: silent on hit 1, fires exactly once on hit 2.
  failpoint::arm("test.combo=error:after1:times1");
  EXPECT_NO_THROW(failpoint::inject("test.combo"));
  EXPECT_THROW(failpoint::inject("test.combo"), Error);
  EXPECT_NO_THROW(failpoint::inject("test.combo"));
}

TEST_F(FailpointTest, OneInNDrawsAreSeedDeterministic) {
  const auto pattern = [](std::uint64_t seed) {
    failpoint::disarm_all();
    failpoint::set_seed(seed);
    failpoint::arm("test.prob=error:1in4");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        failpoint::inject("test.prob");
      } catch (const Error&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  const auto a = pattern(7);
  const auto b = pattern(7);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";

  // Sanity: 1in4 over 64 hits should fire sometimes but not always.
  const auto fires = failpoint::list()[0].fires;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FailpointTest, ReArmingReplacesSpecAndResetsCounters) {
  failpoint::arm("test.rearm=error");
  EXPECT_THROW(failpoint::inject("test.rearm"), Error);
  failpoint::arm("test.rearm=delay(0)");
  EXPECT_NO_THROW(failpoint::inject("test.rearm"));
  const auto infos = failpoint::list();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].spec, "test.rearm=delay(0)");
  EXPECT_EQ(infos[0].hits, 1u) << "re-arm must reset counters";
}

TEST_F(FailpointTest, DisarmRemovesOneSiteDisarmAllTheRest) {
  failpoint::arm_many("test.a=error;test.b=error");
  EXPECT_EQ(failpoint::list().size(), 2u);
  EXPECT_TRUE(failpoint::disarm("test.a"));
  EXPECT_FALSE(failpoint::disarm("test.a"));
  EXPECT_NO_THROW(failpoint::inject("test.a"));
  EXPECT_THROW(failpoint::inject("test.b"), Error);
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_NO_THROW(failpoint::inject("test.b"));
}

TEST_F(FailpointTest, MalformedSpecsThrowAndArmNothing) {
  for (const char* bad :
       {"", "nosite", "site=", "site=bogus", "site=errno", "site=errno()",
        "site=delay(x)", "site=error:1in0", "site=error:sometimes"}) {
    EXPECT_THROW(failpoint::arm(bad), Error) << "spec: " << bad;
  }
  EXPECT_FALSE(failpoint::any_armed());
}

TEST_F(FailpointTest, ArmFromEnvReadsSpecAndSeed) {
  ::setenv("PICP_FAILPOINTS_SEED", "11", 1);
  ::setenv("PICP_FAILPOINTS", "test.env=error:times1;;test.env2=delay(0)", 1);
  EXPECT_TRUE(failpoint::arm_from_env());
  EXPECT_EQ(failpoint::list().size(), 2u);
  EXPECT_THROW(failpoint::inject("test.env"), Error);
  ::unsetenv("PICP_FAILPOINTS");
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::arm_from_env());
}

TEST_F(FailpointTest, CrashActionHardExits134) {
  EXPECT_EXIT(
      {
        failpoint::arm("test.crash=crash");
        failpoint::inject("test.crash");
      },
      testing::ExitedWithCode(134), "");
}

TEST_F(FailpointTest, PartialWriteAtAtomicFileNeverPublishesTornBytes) {
  // The satellite regression in miniature: a short write inside AtomicFile
  // must throw — and because the temp file is unlinked on abort, nothing
  // truncated may ever appear under the final name.
  const std::string dir = testing::TempDir() + "/picp_failpoint_partial";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/artifact.bin";
  const std::string payload(256, 'x');

  failpoint::arm("atomicfile.write=partial_write(16)");
  EXPECT_THROW(atomic_write_file(path, payload.data(), payload.size()),
               Error);
  failpoint::disarm_all();
  EXPECT_FALSE(fs::exists(path)) << "torn write must not be published";
  EXPECT_TRUE(fs::is_empty(dir)) << "temp file must be unlinked on abort";

  // Disarmed, the same call publishes the full payload.
  atomic_write_file(path, payload.data(), payload.size());
  std::ifstream in(path, std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(back, payload);
  fs::remove_all(dir);
}

TEST_F(FailpointTest, CommitFailpointLeavesPreviousFileIntact) {
  const std::string dir = testing::TempDir() + "/picp_failpoint_commit";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/artifact.bin";
  atomic_write_file(path, "old", 3);

  failpoint::arm("atomicfile.commit=error");
  EXPECT_THROW(atomic_write_file(path, "new!", 4), Error);
  failpoint::disarm_all();

  std::ifstream in(path, std::ios::binary);
  std::string back((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(back, "old") << "failed commit must not touch the old file";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace picp
