// Integration: the Dynamic Workload Generator replaying a trace must
// reproduce the application's own workload accounting exactly — this is the
// validation the paper performed for Fig 5 ("we also have validated our
// predictions ... by comparing the output of our Dynamic Workload Generator
// with actual workload").

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "mapping/mapper.hpp"
#include "picsim/sim_driver.hpp"
#include "trace/trace_reader.hpp"
#include "workload/generator.hpp"

namespace picp {
namespace {

SimConfig tiny_config(const std::string& mapper) {
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 800;
  cfg.num_iterations = 400;
  cfg.sample_every = 50;
  cfg.num_ranks = 24;
  cfg.filter_size = 0.08;
  cfg.mapper_kind = mapper;
  cfg.measure = false;
  cfg.trace_float64 = true;  // exact replay requires full precision
  return cfg;
}

class GeneratorReplay : public testing::TestWithParam<std::string> {};

TEST_P(GeneratorReplay, ReproducesActualWorkloadExactly) {
  const std::string path = testing::TempDir() + "/picp_replay_" +
                           GetParam() + ".bin";
  const SimConfig cfg = tiny_config(GetParam());
  SimDriver driver(cfg);
  const SimResult app = driver.run(path);

  const auto mapper = make_mapper(cfg.mapper_kind, driver.mesh(),
                                  driver.partition(), cfg.filter_size);
  WorkloadParams params;
  params.ghost_radius = cfg.filter_size;
  WorkloadGenerator generator(driver.mesh(), driver.partition(), *mapper,
                              params);
  TraceReader reader(path);
  const WorkloadResult replay = generator.generate(reader);

  ASSERT_EQ(replay.num_intervals(), app.actual.num_intervals());
  for (std::size_t t = 0; t < replay.num_intervals(); ++t) {
    for (Rank r = 0; r < cfg.num_ranks; ++r) {
      EXPECT_EQ(replay.comp_real.at(r, t), app.actual.comp_real.at(r, t))
          << GetParam() << " real r=" << r << " t=" << t;
      EXPECT_EQ(replay.comp_ghost.at(r, t), app.actual.comp_ghost.at(r, t))
          << GetParam() << " ghost r=" << r << " t=" << t;
    }
    EXPECT_EQ(replay.comm_real.interval_volume(t),
              app.actual.comm_real.interval_volume(t));
    EXPECT_EQ(replay.comm_ghost.interval_volume(t),
              app.actual.comm_ghost.interval_volume(t));
    EXPECT_EQ(replay.partitions_per_interval[t],
              app.actual.partitions_per_interval[t]);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Mappers, GeneratorReplay,
                         testing::Values("element", "bin", "hilbert"));

TEST(GeneratorScalability, SingleTraceServesManyRankCounts) {
  // The paper's core property (§II-D): particle movement is independent of
  // the processor count, so one trace predicts workload for any R.
  const std::string path = testing::TempDir() + "/picp_multi_r.bin";
  const SimConfig cfg = tiny_config("bin");
  SimDriver driver(cfg);
  driver.run(path);

  for (const Rank ranks : {4, 24, 96}) {
    const MeshPartition partition = rcb_partition(driver.mesh(), ranks);
    const auto mapper = make_mapper("bin", driver.mesh(), partition,
                                    cfg.filter_size);
    WorkloadParams params;
    params.ghost_radius = cfg.filter_size;
    WorkloadGenerator generator(driver.mesh(), partition, *mapper, params);
    TraceReader reader(path);
    const WorkloadResult result = generator.generate(reader);
    EXPECT_EQ(result.num_ranks, ranks);
    for (std::size_t t = 0; t < result.num_intervals(); ++t)
      EXPECT_EQ(result.comp_real.interval_total(t), 800);
  }
  std::remove(path.c_str());
}

TEST(GeneratorScalability, PeakWorkloadNonIncreasingInRanks) {
  // More processors can only spread a fixed particle set thinner (bin
  // mapping): the global peak must be non-increasing in R.
  const std::string path = testing::TempDir() + "/picp_peak_r.bin";
  const SimConfig cfg = tiny_config("bin");
  SimDriver driver(cfg);
  driver.run(path);

  std::int64_t prev_peak = std::numeric_limits<std::int64_t>::max();
  for (const Rank ranks : {4, 16, 64}) {
    const MeshPartition partition = rcb_partition(driver.mesh(), ranks);
    const auto mapper = make_mapper("bin", driver.mesh(), partition,
                                    cfg.filter_size);
    WorkloadParams params;
    params.ghost_radius = cfg.filter_size;
    params.compute_ghosts = false;
    params.compute_comm = false;
    WorkloadGenerator generator(driver.mesh(), partition, *mapper, params);
    TraceReader reader(path);
    const WorkloadResult result = generator.generate(reader);
    const std::int64_t peak = result.comp_real.global_max();
    EXPECT_LE(peak, prev_peak) << "ranks=" << ranks;
    prev_peak = peak;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
