#include "util/shape_check.hpp"

#include <gtest/gtest.h>

namespace picp::shape {
namespace {

TEST(ShapeCheck, MonotoneIncreasingStrict) {
  const std::vector<double> up = {1.0, 2.0, 2.0, 5.0};
  EXPECT_TRUE(monotone_increasing(up).pass);
  const std::vector<double> down = {1.0, 2.0, 1.5, 5.0};
  const ShapeResult r = monotone_increasing(down);
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.detail.find("value[2]"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("1.5"), std::string::npos) << r.detail;
}

TEST(ShapeCheck, MonotoneIncreasingSlackToleratesNoise) {
  // 5% dip below the running max is forgiven at 10% slack, not at 1%.
  const std::vector<double> noisy = {10.0, 20.0, 19.0, 30.0};
  EXPECT_TRUE(monotone_increasing(noisy, 0.10).pass);
  EXPECT_FALSE(monotone_increasing(noisy, 0.01).pass);
}

TEST(ShapeCheck, MonotoneDecreasingStrictAndSlack) {
  const std::vector<double> down = {100.0, 40.0, 40.0, 7.0};
  EXPECT_TRUE(monotone_decreasing(down).pass);
  const std::vector<double> bump = {100.0, 40.0, 42.0, 7.0};
  EXPECT_FALSE(monotone_decreasing(bump).pass);
  EXPECT_TRUE(monotone_decreasing(bump, 0.10).pass);
}

TEST(ShapeCheck, MonotoneTrivialCases) {
  EXPECT_TRUE(monotone_increasing({}).pass);
  const std::vector<double> one = {3.0};
  EXPECT_TRUE(monotone_increasing(one).pass);
  EXPECT_TRUE(monotone_decreasing(one).pass);
}

TEST(ShapeCheck, PlateauPrefixLength) {
  const std::vector<double> series = {100.0, 101.0, 99.0, 100.0, 80.0, 70.0};
  EXPECT_EQ(plateau_prefix_length(series, 0.05), 4u);
  EXPECT_EQ(plateau_prefix_length(series, 0.0), 1u);
  EXPECT_EQ(plateau_prefix_length({}, 0.05), 0u);
  // Everything within tolerance -> whole series is the plateau.
  EXPECT_EQ(plateau_prefix_length(series, 1.0), series.size());
}

TEST(ShapeCheck, PlateauPrefixGate) {
  const std::vector<double> series = {100.0, 100.0, 100.0, 50.0};
  EXPECT_TRUE(plateau_prefix(series, 0.01, 3).pass);
  const ShapeResult r = plateau_prefix(series, 0.01, 4);
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.detail.find("plateau length 3"), std::string::npos) << r.detail;
}

TEST(ShapeCheck, OrderSeparation) {
  EXPECT_NEAR(orders_of_magnitude(1000.0, 10.0), 2.0, 1e-12);
  EXPECT_EQ(orders_of_magnitude(10.0, 0.0), 0.0);
  EXPECT_TRUE(order_separation(5000.0, 40.0, 2.0).pass);
  const ShapeResult r = order_separation(500.0, 40.0, 2.0);
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.detail.find("orders"), std::string::npos) << r.detail;
}

TEST(ShapeCheck, Thresholds) {
  EXPECT_TRUE(below_threshold(8.42, 20.0, "avg MAPE %").pass);
  EXPECT_FALSE(below_threshold(25.0, 20.0, "avg MAPE %").pass);
  EXPECT_TRUE(above_threshold(56.13, 20.0, "bin RU %").pass);
  const ShapeResult r = above_threshold(0.68, 20.0, "bin RU %");
  EXPECT_FALSE(r.pass);
  EXPECT_NE(r.detail.find("bin RU %"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("0.68"), std::string::npos) << r.detail;
}

TEST(ShapeCheck, WithinFactor) {
  EXPECT_TRUE(within_factor(9.0, 10.0, 2.0, "wall s").pass);
  EXPECT_TRUE(within_factor(19.0, 10.0, 2.0, "wall s").pass);
  EXPECT_FALSE(within_factor(25.0, 10.0, 2.0, "wall s").pass);
  EXPECT_FALSE(within_factor(4.0, 10.0, 2.0, "wall s").pass);
  // Degenerate inputs never pass silently.
  EXPECT_FALSE(within_factor(-1.0, 10.0, 2.0, "wall s").pass);
  EXPECT_FALSE(within_factor(1.0, 10.0, 0.5, "wall s").pass);
}

TEST(ShapeCheck, SpanRatio) {
  const std::vector<double> growing = {2.0, 5.0, 11.0};
  EXPECT_TRUE(span_ratio_at_least(growing, 5.0, "ghosts").pass);
  EXPECT_FALSE(span_ratio_at_least(growing, 6.0, "ghosts").pass);
  EXPECT_FALSE(span_ratio_at_least({}, 1.0, "ghosts").pass);
  const std::vector<double> zero_start = {0.0, 5.0};
  EXPECT_FALSE(span_ratio_at_least(zero_start, 1.0, "ghosts").pass);
}

TEST(ShapeCheck, ToDoublesAndPreview) {
  const std::vector<std::int64_t> ints = {1, 2, 3};
  const std::vector<double> doubles = to_doubles(ints);
  ASSERT_EQ(doubles.size(), 3u);
  EXPECT_EQ(doubles[2], 3.0);

  std::vector<double> series(20);
  for (std::size_t i = 0; i < series.size(); ++i)
    series[i] = static_cast<double>(i);
  const std::string p = preview(series, 6);
  EXPECT_NE(p.find("..."), std::string::npos) << p;
  EXPECT_NE(p.find("(n=20)"), std::string::npos) << p;
  EXPECT_NE(p.find("19"), std::string::npos) << p;
}

}  // namespace
}  // namespace picp::shape
