#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace picp {
namespace {

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("a", "b", "c");
  csv.row(1, 2.5, "x");
  EXPECT_EQ(out.str(), "a,b,c\n1,2.5,x\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, FileTarget) {
  const std::string path = testing::TempDir() + "/picp_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row("x", "y");
    csv.row(1, 2);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir/foo.csv"), Error);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(" warn "), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), Error);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emitting below the threshold must be a no-op (no crash, no output).
  PICP_LOG_DEBUG << "hidden " << 42;
  set_log_level(before);
}

}  // namespace
}  // namespace picp
