#include "mapping/weighted_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

SpectralMesh make_mesh() {
  return SpectralMesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 8, 8, 8, 3);
}

std::vector<Vec3> corner_cloud(std::size_t n, std::uint64_t seed) {
  // Concentrated in one octant — the worst case for unweighted RCB.
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0.0, 0.25), rng.uniform(0.0, 0.25),
             rng.uniform(0.0, 0.25));
  return out;
}

std::int64_t peak(const std::vector<Rank>& owners, Rank ranks) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(ranks), 0);
  for (const Rank r : owners) ++counts[static_cast<std::size_t>(r)];
  return *std::max_element(counts.begin(), counts.end());
}

TEST(WeightedRcb, MatchesUnweightedForUniformWeights) {
  const SpectralMesh mesh = make_mesh();
  const std::vector<double> weights(
      static_cast<std::size_t>(mesh.num_elements()), 1.0);
  const MeshPartition weighted = weighted_rcb_partition(mesh, 8, weights);
  EXPECT_LE(weighted.max_elements_per_rank() -
                weighted.min_elements_per_rank(),
            1);
}

TEST(WeightedRcb, ZeroWeightsFallBackToElementCounts) {
  const SpectralMesh mesh = make_mesh();
  const std::vector<double> weights(
      static_cast<std::size_t>(mesh.num_elements()), 0.0);
  const MeshPartition part = weighted_rcb_partition(mesh, 4, weights);
  EXPECT_LE(part.max_elements_per_rank() - part.min_elements_per_rank(), 1);
}

TEST(WeightedRcb, BalancesWeightNotCount) {
  const SpectralMesh mesh = make_mesh();
  // One octant carries 100x the weight of the rest.
  std::vector<double> weights(
      static_cast<std::size_t>(mesh.num_elements()), 1.0);
  for (ElementId e = 0; e < mesh.num_elements(); ++e) {
    const Vec3 c = mesh.element_center(e);
    if (c.x < 0.5 && c.y < 0.5 && c.z < 0.5)
      weights[static_cast<std::size_t>(e)] = 100.0;
  }
  const MeshPartition part = weighted_rcb_partition(mesh, 8, weights);
  // Per-rank weight should be near-balanced.
  std::vector<double> rank_weight(8, 0.0);
  for (ElementId e = 0; e < mesh.num_elements(); ++e)
    rank_weight[static_cast<std::size_t>(part.owner_of(e))] +=
        weights[static_cast<std::size_t>(e)];
  const double max_w =
      *std::max_element(rank_weight.begin(), rank_weight.end());
  const double min_w =
      *std::min_element(rank_weight.begin(), rank_weight.end());
  EXPECT_LT(max_w / min_w, 1.6);
  // The heavy octant's elements are spread over several ranks.
  std::set<Rank> heavy_owners;
  for (ElementId e = 0; e < mesh.num_elements(); ++e)
    if (weights[static_cast<std::size_t>(e)] == 100.0)
      heavy_owners.insert(part.owner_of(e));
  EXPECT_GE(heavy_owners.size(), 4u);
}

TEST(WeightedRcb, RejectsBadArguments) {
  const SpectralMesh mesh = make_mesh();
  EXPECT_THROW(weighted_rcb_partition(mesh, 4, std::vector<double>{1.0}),
               Error);
  std::vector<double> negative(
      static_cast<std::size_t>(mesh.num_elements()), -1.0);
  EXPECT_THROW(weighted_rcb_partition(mesh, 4, negative), Error);
}

TEST(WeightedMapper, BeatsPlainElementMappingOnConcentratedCloud) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition plain = rcb_partition(mesh, 16);
  const auto cloud = corner_cloud(4000, 1);

  std::vector<Rank> owners;
  // Plain element mapping: all particles land on the octant's ranks.
  for (std::size_t i = 0; i < cloud.size(); ++i)
    owners.push_back(plain.owner_of(mesh.element_of(cloud[i])));
  const std::int64_t plain_peak = peak(owners, 16);

  WeightedElementMapper mapper(mesh, 16, /*grid_weight=*/0.5,
                               /*imbalance_trigger=*/1.5);
  mapper.map(cloud, owners);
  EXPECT_GE(mapper.repartition_count(), 1u);
  EXPECT_LT(peak(owners, 16) * 2, plain_peak);
}

TEST(WeightedMapper, NoRepartitionWhenBalanced) {
  const SpectralMesh mesh = make_mesh();
  Xoshiro256 rng(2);
  std::vector<Vec3> uniform(4000);
  for (auto& p : uniform)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  WeightedElementMapper mapper(mesh, 8, 1.0, /*imbalance_trigger=*/2.0);
  std::vector<Rank> owners;
  mapper.map(uniform, owners);
  EXPECT_EQ(mapper.repartition_count(), 0u);
}

TEST(WeightedMapper, PreservesParticleGridLocality) {
  // Every particle must be owned by the rank owning its element.
  const SpectralMesh mesh = make_mesh();
  WeightedElementMapper mapper(mesh, 16);
  const auto cloud = corner_cloud(2000, 3);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_EQ(owners[i],
              mapper.partition().owner_of(mesh.element_of(cloud[i])));
    EXPECT_EQ(owners[i], mapper.owner_of_point(cloud[i]));
  }
}

TEST(WeightedMapper, FactoryKnowsIt) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, 8);
  EXPECT_EQ(make_mapper("weighted", mesh, part, 0.05)->name(), "weighted");
}

TEST(WeightedMapper, RejectsBadArguments) {
  const SpectralMesh mesh = make_mesh();
  EXPECT_THROW(WeightedElementMapper(mesh, 0), Error);
  EXPECT_THROW(WeightedElementMapper(mesh, 4, -1.0), Error);
  EXPECT_THROW(WeightedElementMapper(mesh, 4, 1.0, 0.5), Error);
}

}  // namespace
}  // namespace picp
